//! Search-engine offline analytics: PageRank over the web graph and
//! inverted-index construction (paper Table 4, "Search Engine" rows).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, Probe, SimProbe};
use bdb_datagen::text::TextGenerator;
use bdb_datagen::{GraphGenerator, RmatParams};
use bdb_graph::{pagerank, CsrGraph, GraphTraceModel, PageRankConfig};
use bdb_mapreduce::{Emitter, Engine, FrameworkModel, Job};
use std::time::Instant;

/// Library-scale baseline page count (the paper's 10^6 pages).
pub const PAGES_BASELINE: u64 = 4_000;

/// PageRank over an R-MAT graph with Google-web-fitted parameters.
///
/// The paper runs PageRank on Hadoop; the traced run therefore overlays
/// the MapReduce framework cost per vertex per iteration on top of the
/// kernel's own access pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageRankWorkload;

fn web_graph(scale: &RunScale, pages: u64) -> CsrGraph {
    let g = GraphGenerator::new(RmatParams::google_web(), scale.seed_for(30))
        .generate(pages.min(u32::MAX as u64) as u32);
    CsrGraph::from_edges(g.nodes, &g.edges)
}

impl Workload for PageRankWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::PageRank
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let pages = scale.native_units(PAGES_BASELINE);
        let graph = web_graph(scale, pages);
        let bytes = graph.byte_size();
        let start = Instant::now();
        let (ranks, iterations) =
            pagerank::pagerank(&graph, PageRankConfig { max_iterations: 20, ..Default::default() });
        let seconds = start.elapsed().as_secs_f64();
        let top = ranks.iter().cloned().fold(0.0f64, f64::max);
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{iterations} iterations, top rank {top:.5}"))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let pages = scale.native_units(PAGES_BASELINE);
        let graph = web_graph(scale, pages);
        let mut probe = SimProbe::new(machine);
        let mut trace = Some(GraphTraceModel::new(&graph));
        let mut fw = FrameworkModel::new();
        // Warm: one power iteration plus framework code.
        let warm_cfg = PageRankConfig { max_iterations: 1, ..Default::default() };
        pagerank::pagerank_traced(&graph, warm_cfg, &mut probe, &mut trace);
        fw.warm(&mut probe);
        probe.reset_stats();
        // Hadoop PageRank re-reads every vertex's adjacency record from
        // HDFS each iteration and shuffles one contribution per edge.
        let config = PageRankConfig { max_iterations: 5, ..Default::default() };
        let (_, iterations) = pagerank::pagerank_traced(&graph, config, &mut probe, &mut trace);
        for _ in 0..iterations {
            for v in 0..graph.nodes() {
                let record = 16 + 8 * graph.out_degree(v) as usize;
                fw.on_map_record(&mut probe, record);
                if v % 4 == 0 {
                    fw.on_emit(&mut probe, 12);
                }
            }
        }
        probe.finish()
    }
}

/// Inverted-index construction as a MapReduce job: `(term, doc)` pairs
/// shuffled into per-term posting lists.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexWorkload;

struct IndexJob;
impl Job for IndexJob {
    /// `(doc id, document text)`.
    type Input = (u32, String);
    type Key = String;
    type Value = u32;
    type Output = (String, Vec<u32>);

    fn input_size(&self, (_, text): &(u32, String)) -> usize {
        4 + text.len()
    }

    fn map<P: Probe + ?Sized>(
        &self,
        (doc, text): &(u32, String),
        emit: &mut Emitter<String, u32>,
        probe: &mut P,
    ) {
        let mut seen = std::collections::HashSet::new();
        for term in text.split_whitespace() {
            probe.int_ops(term.len() as u64);
            let term = term.trim_matches('.');
            if seen.insert(term) {
                emit.emit(term.to_owned(), *doc);
            }
        }
    }

    fn reduce<P: Probe + ?Sized>(
        &self,
        term: String,
        mut postings: Vec<u32>,
        out: &mut Vec<(String, Vec<u32>)>,
        probe: &mut P,
    ) {
        probe.int_ops(postings.len() as u64 * 2);
        postings.sort_unstable();
        postings.dedup();
        out.push((term, postings));
    }
}

fn documents(scale: &RunScale, pages: u64) -> Vec<(u32, String)> {
    let mut text = TextGenerator::wikipedia(scale.seed_for(31));
    let mut docs = Vec::with_capacity(pages as usize);
    text.documents(pages as usize, |d| docs.push((docs.len() as u32, d)));
    docs
}

impl Workload for IndexWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::Index
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let pages = scale.native_units(PAGES_BASELINE);
        let docs = documents(scale, pages);
        let bytes: u64 = docs.iter().map(|(_, d)| d.len() as u64).sum();
        let engine = Engine::builder().build();
        let start = Instant::now();
        let (index, _) = engine.run(&IndexJob, &docs);
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} terms indexed over {pages} pages", index.len()))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let pages = scale.traced_units(PAGES_BASELINE);
        let docs = documents(scale, pages);
        let engine = Engine::builder().build();
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        fw.warm(&mut probe); // class-loading warm-up
        let warm = docs.len().div_ceil(5).max(1);
        engine.run_traced_with(&IndexJob, &docs[..warm], &mut probe, &mut fw);
        probe.reset_stats();
        engine.run_traced_with(&IndexJob, &docs, &mut probe, &mut fw);
        probe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_converges_and_reports() {
        let r = PageRankWorkload.run_native(&RunScale::quick());
        assert!(matches!(r.metric, UserMetric::Dps { .. }));
        assert!(r.detail.contains("iterations"));
    }

    #[test]
    fn index_builds_postings() {
        let r = IndexWorkload.run_native(&RunScale::quick());
        let terms: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(terms > 100, "vocabulary should be sizable: {terms}");
    }

    #[test]
    fn index_job_emits_unique_doc_ids() {
        let docs = vec![(7u32, "a b a".to_owned())];
        let engine = Engine::builder().threads(1).build();
        let (out, _) = engine.run(&IndexJob, &docs);
        for (_, postings) in out {
            assert_eq!(postings, vec![7]);
        }
    }

    #[test]
    fn traced_search_workloads_have_hadoop_footprints() {
        let scale = RunScale::quick();
        let pr = PageRankWorkload.run_traced(&scale, MachineConfig::xeon_e5645());
        let ix = IndexWorkload.run_traced(&scale, MachineConfig::xeon_e5645());
        assert!(pr.mix.other > 0);
        assert!(ix.l1i_mpki() > 2.0, "Index on Hadoop: L1I MPKI {}", ix.l1i_mpki());
        assert!(pr.mix.fp_ops > 0, "PageRank does FP");
    }
}
