//! Micro benchmarks: Sort, Grep, WordCount (MapReduce over Wikipedia-
//! style text) and BFS (MPI-style over an R-MAT graph).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, Probe, SimProbe};
use bdb_datagen::text::TextGenerator;
use bdb_datagen::{GraphGenerator, RmatParams};
use bdb_graph::{bfs, CsrGraph, GraphTraceModel};
use bdb_mapreduce::{Emitter, Engine, FrameworkModel, Job};
use std::time::Instant;

/// Library-scale baseline for the "32 GB" text workloads.
pub const TEXT_BASELINE_BYTES: u64 = 1 << 20; // 1 MiB at multiplier 1
/// Baseline for the graph micro benchmark — the paper's own 2^15
/// vertices (Table 6), which is already laptop-scale.
pub const GRAPH_BASELINE_VERTICES: u64 = 1 << 15;

/// Sort-buffer budget for the Sort workload: fixed while inputs grow,
/// so large multipliers spill to disk exactly as Hadoop does when the
/// memory no longer holds the input (paper Figure 3-2's Sort curve).
const SORT_BUFFER_BYTES: usize = 4 << 20;

fn corpus(scale: &RunScale, bytes: u64) -> Vec<String> {
    let mut text = TextGenerator::wikipedia(scale.seed_for(1));
    text.corpus(bytes as usize).lines().map(str::to_owned).collect()
}

fn engine_for(buffer: usize) -> Engine {
    Engine::builder().map_buffer_bytes(buffer).build()
}

/// Sorts text lines by content (the TeraSort-style micro benchmark).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortWorkload;

struct SortJob;
impl Job for SortJob {
    type Input = String;
    type Key = String;
    type Value = ();
    type Output = String;
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(&self, line: &String, emit: &mut Emitter<String, ()>, probe: &mut P) {
        probe.int_ops(line.len() as u64 / 8);
        emit.emit(line.clone(), ());
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<()>,
        out: &mut Vec<String>,
        probe: &mut P,
    ) {
        probe.int_ops(values.len() as u64);
        for _ in values {
            out.push(key.clone());
        }
    }
}

impl Workload for SortWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::Sort
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let bytes = scale.native_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(SORT_BUFFER_BYTES);
        let start = Instant::now();
        let (out, stats) = engine.run(&SortJob, &lines);
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} records, {} spills", out.len(), stats.spills))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let bytes = scale.traced_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(SORT_BUFFER_BYTES);
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        fw.warm(&mut probe); // class-loading warm-up
        let warm = lines.len().div_ceil(5).max(1);
        engine.run_traced_with(&SortJob, &lines[..warm], &mut probe, &mut fw);
        probe.reset_stats();
        engine.run_traced_with(&SortJob, &lines, &mut probe, &mut fw);
        probe.finish()
    }
}

/// Pattern matching over text lines (`grep` for frequent terms).
#[derive(Debug, Clone, Copy, Default)]
pub struct GrepWorkload;

struct GrepJob {
    pattern: &'static str,
}

impl Job for GrepJob {
    type Input = String;
    type Key = u64;
    type Value = String;
    type Output = String;
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<u64, String>,
        probe: &mut P,
    ) {
        // Byte scan: the real work of grep.
        probe.int_ops(line.len() as u64);
        probe.branch(line.len().is_multiple_of(2));
        if line.contains(self.pattern) {
            emit.emit(1, line.clone());
        }
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        _key: u64,
        values: Vec<String>,
        out: &mut Vec<String>,
        probe: &mut P,
    ) {
        probe.int_ops(values.len() as u64);
        out.extend(values);
    }
}

impl Workload for GrepWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::Grep
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let bytes = scale.native_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(64 << 20);
        let start = Instant::now();
        let (hits, _) = engine.run(&GrepJob { pattern: "time" }, &lines);
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} matching lines", hits.len()))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let bytes = scale.traced_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(64 << 20);
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        fw.warm(&mut probe); // class-loading warm-up
        let warm = lines.len().div_ceil(5).max(1);
        engine.run_traced_with(&GrepJob { pattern: "time" }, &lines[..warm], &mut probe, &mut fw);
        probe.reset_stats();
        engine.run_traced_with(&GrepJob { pattern: "time" }, &lines, &mut probe, &mut fw);
        probe.finish()
    }
}

/// Word frequency counting with a combiner.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountWorkload;

struct WordCountJob;
impl Job for WordCountJob {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn input_size(&self, line: &String) -> usize {
        line.len()
    }
    fn map<P: Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<String, u64>,
        probe: &mut P,
    ) {
        for w in line.split_whitespace() {
            probe.int_ops(w.len() as u64);
            emit.emit(w.trim_matches('.').to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        probe: &mut P,
    ) {
        probe.int_ops(values.len() as u64);
        out.push((key, values.into_iter().sum()));
    }
}

impl Workload for WordCountWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::WordCount
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let bytes = scale.native_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(64 << 20);
        let start = Instant::now();
        let (counts, _) = engine.run(&WordCountJob, &lines);
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} distinct words", counts.len()))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let bytes = scale.traced_units(TEXT_BASELINE_BYTES);
        let lines = corpus(scale, bytes);
        let engine = engine_for(64 << 20);
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        fw.warm(&mut probe); // class-loading warm-up
        let warm = lines.len().div_ceil(5).max(1);
        engine.run_traced_with(&WordCountJob, &lines[..warm], &mut probe, &mut fw);
        probe.reset_stats();
        engine.run_traced_with(&WordCountJob, &lines, &mut probe, &mut fw);
        probe.finish()
    }
}

/// MPI-style breadth-first search over an R-MAT web graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsWorkload;

fn bfs_graph(scale: &RunScale, vertices: u64) -> CsrGraph {
    let g = GraphGenerator::new(RmatParams::google_web(), scale.seed_for(4))
        .generate(vertices.min(u32::MAX as u64) as u32);
    CsrGraph::from_edges(g.nodes, &g.edges)
}

impl Workload for BfsWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::Bfs
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let vertices = scale.native_units(GRAPH_BASELINE_VERTICES);
        let graph = bfs_graph(scale, vertices);
        let bytes = graph.byte_size();
        let start = Instant::now();
        let result = bfs::bfs_partitioned(&graph, 0, 4);
        let seconds = start.elapsed().as_secs_f64();
        let reached = result.levels.iter().flatten().count();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!(
            "{reached} vertices reached, {} supersteps, {} remote sends",
            result.supersteps, result.remote_sends
        ))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        // Graph kernels are cheap to simulate, so traced runs keep the
        // full native graph (the footprint IS the phenomenon: BFS is the
        // paper's data-side outlier).
        let vertices = scale.native_units(GRAPH_BASELINE_VERTICES);
        let graph = bfs_graph(scale, vertices);
        let mut probe = SimProbe::new(machine);
        let mut trace = Some(GraphTraceModel::new(&graph));
        // BFS visits each vertex once, so a prior full run would be an
        // artificial warm-up; warm the (thin) runtime code only and
        // measure one genuine traversal.
        trace.as_mut().expect("set").warm(&mut probe);
        probe.reset_stats();
        bfs::bfs_traced(&graph, 0, &mut probe, &mut trace);
        probe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunScale {
        RunScale::quick()
    }

    #[test]
    fn sort_reports_dps() {
        let r = SortWorkload.run_native(&quick());
        assert!(matches!(r.metric, UserMetric::Dps { .. }));
        assert!(r.metric.value() > 0.0);
        assert_eq!(r.workload, "Sort");
    }

    #[test]
    fn sort_spills_at_large_multiplier() {
        // 1 MiB baseline × 16 = 16 MiB input > 4 MiB sort buffer.
        let r = SortWorkload.run_native(&RunScale::at(16));
        assert!(r.detail.contains("spills"));
        let spills: u64 = r
            .detail
            .split(", ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(spills > 0, "16x input must spill: {}", r.detail);
    }

    #[test]
    fn grep_finds_matches() {
        let r = GrepWorkload.run_native(&quick());
        let hits: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(hits > 0, "pattern 'time' is a common word");
    }

    #[test]
    fn wordcount_counts_distinct_words() {
        let r = WordCountWorkload.run_native(&quick());
        let words: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(words > 50);
    }

    #[test]
    fn bfs_reaches_most_of_the_graph() {
        let r = BfsWorkload.run_native(&quick());
        let reached: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(reached > 50, "web graph giant component: {}", r.detail);
    }

    #[test]
    fn traced_runs_produce_reports() {
        let scale = quick();
        for w in [
            Box::new(SortWorkload) as Box<dyn Workload>,
            Box::new(GrepWorkload),
            Box::new(WordCountWorkload),
            Box::new(BfsWorkload),
        ] {
            let r = w.run_traced(&scale, MachineConfig::xeon_e5645());
            assert!(r.instructions() > 1000, "{:?}", w.id());
            assert!(r.l1i.stats.accesses > 0, "{:?}", w.id());
        }
    }

    #[test]
    fn hadoop_micro_workloads_have_high_l1i_mpki() {
        // The paper's headline: deep software stacks thrash the L1I.
        let r = WordCountWorkload.run_traced(&quick(), MachineConfig::xeon_e5645());
        assert!(r.l1i_mpki() > 5.0, "L1I MPKI {}", r.l1i_mpki());
    }
}
