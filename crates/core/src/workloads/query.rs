//! Realtime analytics: Select, Aggregate and Join queries over the
//! e-commerce transaction tables (paper Tables 3 and 4).
//!
//! The queries execute on the vectorized columnar engine
//! ([`bdb_sql::kernel`]): row tables from the generator are converted to
//! [`ColumnarTable`]s once, then scanned/aggregated/joined in
//! ~1024-row morsels. The row-at-a-time operators in [`bdb_sql::exec`]
//! remain available as the differential-testing oracle.

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, SimProbe};
use bdb_datagen::EcommerceGenerator;
use bdb_sql::expr::{col, lit};
use bdb_sql::kernel;
use bdb_sql::{Aggregation, ColumnType, ColumnarTable, Schema, SqlTraceModel, Table, Value};
use std::time::Instant;

/// Library-scale baseline order count (the paper's 32 GB of table data).
pub const ORDERS_BASELINE: u64 = 8_000;

/// Materializes the ORDER / ORDER_ITEM pair as engine tables.
pub fn build_tables(scale: &RunScale, orders: u64) -> (Table, Table) {
    let (order_rows, item_rows) = EcommerceGenerator::new(scale.seed_for(20)).generate(orders);
    let mut order_t = Table::new(
        "orders",
        Schema::new(&[
            ("ORDER_ID", ColumnType::Int),
            ("BUYER_ID", ColumnType::Int),
            ("CREATE_DATE", ColumnType::Date),
        ]),
    );
    for r in &order_rows {
        order_t
            .push_row(vec![
                Value::Int(r.order_id as i64),
                Value::Int(r.buyer_id as i64),
                Value::Date(r.create_date),
            ])
            .expect("schema matches");
    }
    let mut item_t = Table::new(
        "order_items",
        Schema::new(&[
            ("ITEM_ID", ColumnType::Int),
            ("ORDER_ID", ColumnType::Int),
            ("GOODS_ID", ColumnType::Int),
            ("GOODS_NUMBER", ColumnType::Float),
            ("GOODS_PRICE", ColumnType::Float),
            ("GOODS_AMOUNT", ColumnType::Float),
        ]),
    );
    for r in &item_rows {
        item_t
            .push_row(vec![
                Value::Int(r.item_id as i64),
                Value::Int(r.order_id as i64),
                Value::Int(r.goods_id as i64),
                Value::Float(r.goods_number),
                Value::Float(r.goods_price),
                Value::Float(r.goods_amount),
            ])
            .expect("schema matches");
    }
    (order_t, item_t)
}

fn table_bytes(order_t: &Table, item_t: &Table) -> u64 {
    (order_t.byte_size() + item_t.byte_size()) as u64
}

enum QueryKind {
    Select,
    Aggregate,
    Join,
}

fn run_query(
    kind: &QueryKind,
    orders: &ColumnarTable,
    items: &ColumnarTable,
    probe: Option<(&mut SimProbe, &mut Option<SqlTraceModel>)>,
) -> usize {
    match (kind, probe) {
        (QueryKind::Select, None) => {
            kernel::select(items, &col("GOODS_PRICE").gt(lit(50.0)), &["ITEM_ID", "GOODS_AMOUNT"])
                .expect("valid query")
                .len()
        }
        (QueryKind::Select, Some((p, t))) => kernel::select_traced(
            items,
            &col("GOODS_PRICE").gt(lit(50.0)),
            &["ITEM_ID", "GOODS_AMOUNT"],
            p,
            t,
        )
        .expect("valid query")
        .len(),
        (QueryKind::Aggregate, None) => kernel::aggregate(
            items,
            "GOODS_ID",
            &[Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")],
        )
        .expect("valid query")
        .len(),
        (QueryKind::Aggregate, Some((p, t))) => kernel::aggregate_traced(
            items,
            "GOODS_ID",
            &[Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")],
            p,
            t,
        )
        .expect("valid query")
        .len(),
        (QueryKind::Join, None) => {
            kernel::hash_join(orders, "ORDER_ID", items, "ORDER_ID").expect("valid join").len()
        }
        (QueryKind::Join, Some((p, t))) => {
            kernel::hash_join_traced(orders, "ORDER_ID", items, "ORDER_ID", p, t)
                .expect("valid join")
                .len()
        }
    }
}

macro_rules! query_workload {
    ($name:ident, $id:expr, $kind:expr) => {
        /// Relational-query workload (see module docs).
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl Workload for $name {
            fn id(&self) -> WorkloadId {
                $id
            }

            fn run_native(&self, scale: &RunScale) -> WorkloadReport {
                let n = scale.native_units(ORDERS_BASELINE);
                let (orders, items) = build_tables(scale, n);
                let bytes = table_bytes(&orders, &items);
                let orders = ColumnarTable::from_table(&orders);
                let items = ColumnarTable::from_table(&items);
                let start = Instant::now();
                let rows = run_query(&$kind, &orders, &items, None);
                let seconds = start.elapsed().as_secs_f64();
                WorkloadReport::new(
                    $id,
                    scale.multiplier,
                    UserMetric::Dps { input_bytes: bytes, seconds },
                    bytes,
                )
                .with_detail(format!("{rows} result rows"))
            }

            fn run_traced(
                &self,
                scale: &RunScale,
                machine: MachineConfig,
            ) -> CharacterizationReport {
                let n = scale.traced_units(ORDERS_BASELINE).max(50);
                let (orders, items) = build_tables(scale, n);
                let orders = ColumnarTable::from_table(&orders);
                let items = ColumnarTable::from_table(&items);
                let mut probe = SimProbe::new(machine);
                let mut trace = Some(SqlTraceModel::new());
                trace.as_mut().expect("set").register_columnar(&orders);
                trace.as_mut().expect("set").register_columnar(&items);
                trace.as_mut().expect("set").warm(&mut probe);
                run_query(&$kind, &orders, &items, Some((&mut probe, &mut trace)));
                probe.reset_stats();
                run_query(&$kind, &orders, &items, Some((&mut probe, &mut trace)));
                probe.finish()
            }
        }
    };
}

query_workload!(SelectWorkload, WorkloadId::SelectQuery, QueryKind::Select);
query_workload!(AggregateWorkload, WorkloadId::AggregateQuery, QueryKind::Aggregate);
query_workload!(JoinWorkload, WorkloadId::JoinQuery, QueryKind::Join);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_filters_rows() {
        let r = SelectWorkload.run_native(&RunScale::quick());
        let rows: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(rows > 0);
        assert!(matches!(r.metric, UserMetric::Dps { .. }));
    }

    #[test]
    fn aggregate_groups_by_goods() {
        let r = AggregateWorkload.run_native(&RunScale::quick());
        let rows: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(rows > 10, "many goods groups: {rows}");
    }

    #[test]
    fn join_matches_every_item() {
        let scale = RunScale::quick();
        let r = JoinWorkload.run_native(&scale);
        let rows: usize = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        // Every ORDER_ITEM row has a parent order, so the join returns
        // exactly the item count (≈ 6.3 per order).
        let n = scale.native_units(ORDERS_BASELINE) as usize;
        assert!(rows > n * 4 && rows < n * 9, "rows {rows} for {n} orders");
    }

    #[test]
    fn columnar_engine_matches_row_oracle() {
        let scale = RunScale::quick();
        let (orders, items) = build_tables(&scale, 200);
        let co = ColumnarTable::from_table(&orders);
        let ci = ColumnarTable::from_table(&items);
        let pred = col("GOODS_PRICE").gt(lit(50.0));
        assert_eq!(
            kernel::select(&ci, &pred, &["ITEM_ID", "GOODS_AMOUNT"]).unwrap(),
            bdb_sql::exec::select(&items, &pred, &["ITEM_ID", "GOODS_AMOUNT"]).unwrap()
        );
        let aggs = [Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")];
        assert_eq!(
            kernel::aggregate(&ci, "GOODS_ID", &aggs).unwrap(),
            bdb_sql::exec::aggregate(&items, "GOODS_ID", &aggs).unwrap()
        );
        assert_eq!(
            kernel::hash_join(&co, "ORDER_ID", &ci, "ORDER_ID").unwrap(),
            bdb_sql::exec::hash_join(&orders, "ORDER_ID", &items, "ORDER_ID").unwrap()
        );
    }

    #[test]
    fn traced_queries_record_engine_activity() {
        let r = AggregateWorkload.run_traced(&RunScale::quick(), MachineConfig::xeon_e5645());
        assert!(r.mix.other > 0, "engine stack recorded");
        assert!(r.mix.loads > 0);
        assert!(r.instructions() > 1000);
    }
}
