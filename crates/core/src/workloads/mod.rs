//! Implementations of the nineteen workloads, grouped by the paper's
//! application scenarios (Table 4).
//!
//! | Module | Scenario | Workloads |
//! |---|---|---|
//! | [`micro`] | Micro benchmarks | Sort, Grep, WordCount, BFS |
//! | [`oltp`] | Cloud OLTP | Read, Write, Scan |
//! | [`query`] | Relational query | Select, Aggregate, Join |
//! | [`search`] | Search engine | PageRank, Index |
//! | [`service`] | Online services | Nutch, Olio, Rubis servers |
//! | [`social`] | Social network | K-means, Connected Components |
//! | [`ecommerce`] | E-commerce | Collaborative Filtering, Naive Bayes |

pub mod ecommerce;
pub mod micro;
pub mod oltp;
pub mod query;
pub mod search;
pub mod service;
pub mod social;

use crate::workload::{Workload, WorkloadId};

/// Builds the workload implementation for `id`.
pub fn build(id: WorkloadId) -> Box<dyn Workload> {
    match id {
        WorkloadId::Sort => Box::new(micro::SortWorkload),
        WorkloadId::Grep => Box::new(micro::GrepWorkload),
        WorkloadId::WordCount => Box::new(micro::WordCountWorkload),
        WorkloadId::Bfs => Box::new(micro::BfsWorkload),
        WorkloadId::Read => Box::new(oltp::ReadWorkload),
        WorkloadId::Write => Box::new(oltp::WriteWorkload),
        WorkloadId::Scan => Box::new(oltp::ScanWorkload),
        WorkloadId::SelectQuery => Box::new(query::SelectWorkload),
        WorkloadId::AggregateQuery => Box::new(query::AggregateWorkload),
        WorkloadId::JoinQuery => Box::new(query::JoinWorkload),
        WorkloadId::NutchServer => Box::new(service::NutchWorkload),
        WorkloadId::PageRank => Box::new(search::PageRankWorkload),
        WorkloadId::Index => Box::new(search::IndexWorkload),
        WorkloadId::OlioServer => Box::new(service::OlioWorkload),
        WorkloadId::KMeans => Box::new(social::KMeansWorkload),
        WorkloadId::ConnectedComponents => Box::new(social::CcWorkload),
        WorkloadId::RubisServer => Box::new(service::RubisWorkload),
        WorkloadId::CollaborativeFiltering => Box::new(ecommerce::CfWorkload),
        WorkloadId::NaiveBayes => Box::new(ecommerce::BayesWorkload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_builds_and_matches() {
        for id in WorkloadId::ALL {
            let w = build(id);
            assert_eq!(w.id(), id);
        }
    }
}
