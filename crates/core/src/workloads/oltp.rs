//! Cloud OLTP workloads: Read, Write, Scan against the LSM store,
//! with ProfSearch resumé records as row payloads (paper Table 4).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, Probe, SimProbe};
use bdb_datagen::convert::resumes_to_kv;
use bdb_datagen::ResumeGenerator;
use bdb_kvstore::{Store, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Library-scale baseline operation count ("32 GB" ≈ 20k ops here).
pub const OLTP_BASELINE_OPS: u64 = 20_000;
/// Rows preloaded before read/scan runs.
const PRELOAD_ROWS: u64 = 10_000;
/// Rows returned per scan.
const SCAN_SPAN: u64 = 100;

fn fresh_dir(tag: &str, scale: &RunScale) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bdb-oltp-{tag}-{}-{}-{}",
        std::process::id(),
        scale.multiplier,
        scale.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn preload(dir: &Path, rows: u64, seed: u64, traced: bool) -> Store {
    let mut store = Store::open_with(
        dir,
        StoreConfig { memtable_flush_bytes: 2 << 20, max_tables: 6, ..Default::default() },
    )
    .expect("store open");
    let resumes = ResumeGenerator::new(seed).generate(rows);
    for (k, v) in resumes_to_kv(&resumes) {
        store.put(k.into_bytes(), v.into_bytes()).expect("preload put");
    }
    store.flush().expect("flush");
    if traced {
        store.enable_tracing();
    }
    store
}

fn row_key(i: u64) -> Vec<u8> {
    format!("resume{i:012}").into_bytes()
}

/// Zipf-ish row popularity for reads (hot rows exist).
fn sample_row(rng: &mut StdRng, rows: u64) -> u64 {
    bdb_datagen::table::zipf_sample(rng, rows, 0.7)
}

fn run_ops<P: Probe + ?Sized>(
    kind: WorkloadId,
    store: &mut Store,
    ops: u64,
    rows: u64,
    seed: u64,
    probe: &mut P,
) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut touched = 0u64;
    let mut writer = ResumeGenerator::new(seed ^ 0xFEED);
    for op in 0..ops {
        match kind {
            WorkloadId::Read => {
                let key = row_key(sample_row(&mut rng, rows));
                if store.get_with(&key, probe).expect("get").is_some() {
                    touched += 1;
                }
            }
            WorkloadId::Write => {
                let resume = &writer.generate(1)[0];
                let key = row_key(rows + op + 1);
                store.put_with(key, resume.to_record().into_bytes(), probe).expect("put");
                touched += 1;
            }
            WorkloadId::Scan => {
                let start = rng.gen_range(1..rows.max(2));
                let rows_out = store
                    .scan_with(&row_key(start), &row_key(start + SCAN_SPAN), probe)
                    .expect("scan");
                touched += rows_out.len() as u64;
            }
            _ => unreachable!("not an OLTP workload"),
        }
    }
    (ops, touched)
}

macro_rules! oltp_workload {
    ($name:ident, $id:expr, $tag:literal, $ops_divisor:expr) => {
        /// Cloud OLTP workload (see module docs).
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl Workload for $name {
            fn id(&self) -> WorkloadId {
                $id
            }

            fn run_native(&self, scale: &RunScale) -> WorkloadReport {
                let ops = scale.native_units(OLTP_BASELINE_OPS) / $ops_divisor;
                let rows = scale.native_units(PRELOAD_ROWS);
                let dir = fresh_dir($tag, scale);
                let mut store = preload(&dir, rows, scale.seed_for(10), false);
                let start = Instant::now();
                let (done, touched) = run_ops(
                    $id,
                    &mut store,
                    ops.max(1),
                    rows,
                    scale.seed_for(11),
                    &mut bdb_archsim::NullProbe,
                );
                let seconds = start.elapsed().as_secs_f64();
                let _ = std::fs::remove_dir_all(&dir);
                WorkloadReport::new(
                    $id,
                    scale.multiplier,
                    UserMetric::Ops { operations: done, seconds },
                    rows * 200,
                )
                .with_detail(format!("{touched} rows touched over {done} ops"))
            }

            fn run_traced(
                &self,
                scale: &RunScale,
                machine: MachineConfig,
            ) -> CharacterizationReport {
                let ops = (scale.traced_units(OLTP_BASELINE_OPS) / $ops_divisor).max(10);
                let rows = scale.traced_units(PRELOAD_ROWS).max(100);
                let dir = fresh_dir(concat!($tag, "-traced"), scale);
                let mut store = preload(&dir, rows, scale.seed_for(10), true);
                let mut probe = SimProbe::new(machine);
                store.warm_trace(&mut probe);
                run_ops($id, &mut store, (ops / 5).max(5), rows, scale.seed_for(12), &mut probe);
                probe.reset_stats();
                run_ops($id, &mut store, ops, rows, scale.seed_for(11), &mut probe);
                let _ = std::fs::remove_dir_all(&dir);
                probe.finish()
            }
        }
    };
}

oltp_workload!(ReadWorkload, WorkloadId::Read, "read", 1);
oltp_workload!(WriteWorkload, WorkloadId::Write, "write", 1);
// Scans touch ~100 rows each; run fewer of them for comparable work.
oltp_workload!(ScanWorkload, WorkloadId::Scan, "scan", 20);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_hits_preloaded_rows() {
        let r = ReadWorkload.run_native(&RunScale::quick());
        assert!(matches!(r.metric, UserMetric::Ops { .. }));
        assert!(r.metric.value() > 0.0);
        let touched: u64 = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(touched > 0, "Zipf reads should hit: {}", r.detail);
    }

    #[test]
    fn write_appends_rows() {
        let r = WriteWorkload.run_native(&RunScale::quick());
        let touched: u64 = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert_eq!(touched, RunScale::quick().native_units(OLTP_BASELINE_OPS));
    }

    #[test]
    fn scan_returns_ranges() {
        let r = ScanWorkload.run_native(&RunScale::quick());
        let touched: u64 = r.detail.split(' ').next().and_then(|s| s.parse().ok()).unwrap();
        assert!(touched > 100, "scans return many rows: {}", r.detail);
    }

    #[test]
    fn traced_oltp_reports_server_stack() {
        let r = ReadWorkload.run_traced(&RunScale::quick(), MachineConfig::xeon_e5645());
        assert!(r.mix.other > 0, "LSM server stack instructions recorded");
        assert!(r.instructions() > 1000);
    }
}
