//! Online services: Nutch, Olio and Rubis servers driven at the paper's
//! offered loads (100 × multiplier requests/s, Table 6).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, SimProbe};
use bdb_serving::auction::AuctionServer;
use bdb_serving::loadgen::run_offered_load;
use bdb_serving::search::SearchServer;
use bdb_serving::server::Server;
use bdb_serving::social::SocialServer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The paper's baseline offered load.
pub const BASELINE_RPS: f64 = 100.0;
/// Virtual horizon for the queueing simulation.
const HORIZON: Duration = Duration::from_secs(10);
/// Simulated worker threads (the E5645 has 6 cores).
const WORKERS: u32 = 6;
/// Native service-time samples per run.
const SAMPLES: usize = 400;
/// Requests executed per traced characterization run (baseline).
const TRACED_REQUESTS_BASELINE: u64 = 600;

fn offered(scale: &RunScale) -> f64 {
    BASELINE_RPS * scale.multiplier as f64
}

fn native_report<S: Server>(id: WorkloadId, server: &mut S, scale: &RunScale) -> WorkloadReport {
    let report = run_offered_load(
        server,
        offered(scale),
        HORIZON,
        WORKERS,
        (SAMPLES as f64 * scale.fraction.min(1.0)).max(50.0) as usize,
        scale.seed_for(40),
    );
    WorkloadReport::new(
        id,
        scale.multiplier,
        UserMetric::Rps {
            offered: offered(scale),
            achieved: report.achieved_rps,
            p99: report.latency.percentile(0.99),
        },
        0,
    )
    .with_detail(format!(
        "{} completed, p50 {:?}, saturated: {}",
        report.completed,
        report.latency.percentile(0.5),
        report.saturated()
    ))
}

fn traced_report<S: Server>(
    server: &mut S,
    scale: &RunScale,
    machine: MachineConfig,
    warm: impl FnOnce(&mut S, &mut SimProbe),
) -> CharacterizationReport {
    let mut probe = SimProbe::new(machine);
    warm(server, &mut probe);
    let mut rng = StdRng::seed_from_u64(scale.seed_for(41));
    // Request count scales with offered load, capped for simulation time.
    let requests = (TRACED_REQUESTS_BASELINE as f64 * scale.fraction * scale.multiplier as f64)
        .clamp(50.0, 20_000.0) as u64;
    for _ in 0..requests / 5 + 10 {
        let req = server.sample_request(&mut rng);
        server.handle(&req, &mut probe);
    }
    probe.reset_stats();
    for _ in 0..requests {
        let req = server.sample_request(&mut rng);
        server.handle(&req, &mut probe);
    }
    probe.finish()
}

/// The search-engine front-end under load (Nutch stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct NutchWorkload;

impl Workload for NutchWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::NutchServer
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let docs = (2000.0 * scale.fraction).max(100.0) as u32;
        let mut server = SearchServer::build(docs, scale.seed_for(42));
        native_report(self.id(), &mut server, scale)
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let docs = (1000.0 * scale.fraction).max(100.0) as u32;
        let mut server = SearchServer::build(docs, scale.seed_for(42));
        server.enable_tracing();
        traced_report(&mut server, scale, machine, |s, p| s.warm_trace(p))
    }
}

/// The social-event site under load (Olio stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct OlioWorkload;

impl Workload for OlioWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::OlioServer
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let users = (2000.0 * scale.fraction).max(100.0) as u32;
        let mut server = SocialServer::build(users, 20, scale.seed_for(43));
        native_report(self.id(), &mut server, scale)
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let users = (1000.0 * scale.fraction).max(100.0) as u32;
        let mut server = SocialServer::build(users, 20, scale.seed_for(43));
        server.enable_tracing();
        traced_report(&mut server, scale, machine, |s, p| s.warm_trace(p))
    }
}

/// The auction site under load (Rubis stand-in).
#[derive(Debug, Clone, Copy, Default)]
pub struct RubisWorkload;

impl Workload for RubisWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::RubisServer
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let items = (5000.0 * scale.fraction).max(200.0) as u32;
        let mut server = AuctionServer::build(items, 20, items / 4, scale.seed_for(44));
        native_report(self.id(), &mut server, scale)
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let items = (2000.0 * scale.fraction).max(200.0) as u32;
        let mut server = AuctionServer::build(items, 20, items / 4, scale.seed_for(44));
        server.enable_tracing();
        traced_report(&mut server, scale, machine, |s, p| s.warm_trace(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn services_track_light_offered_load() {
        for w in [
            Box::new(NutchWorkload) as Box<dyn Workload>,
            Box::new(OlioWorkload),
            Box::new(RubisWorkload),
        ] {
            let r = w.run_native(&RunScale::quick());
            let UserMetric::Rps { offered, achieved, .. } = r.metric else {
                panic!("services report RPS");
            };
            assert_eq!(offered, 100.0);
            assert!(
                (achieved - offered).abs() / offered < 0.2,
                "{:?}: achieved {achieved} at offered {offered}",
                w.id()
            );
        }
    }

    #[test]
    fn traced_services_show_deep_stacks() {
        let r = OlioWorkload.run_traced(&RunScale::quick(), MachineConfig::xeon_e5645());
        assert!(r.mix.other > 0);
        assert!(r.l1i_mpki() > 5.0, "app-server stack L1I MPKI {}", r.l1i_mpki());
        assert!(r.l2_mpki() > 1.0, "large resident state L2 MPKI {}", r.l2_mpki());
    }
}
