//! E-commerce offline analytics: Collaborative Filtering and Naive
//! Bayes over Amazon-movie-review-style data (paper Table 4).

use crate::report::{UserMetric, WorkloadReport};
use crate::scale::RunScale;
use crate::workload::{Workload, WorkloadId};
use bdb_archsim::{CharacterizationReport, MachineConfig, SimProbe};
use bdb_datagen::convert::{reviews_to_labeled, reviews_to_ratings};
use bdb_datagen::ReviewGenerator;
use bdb_mapreduce::FrameworkModel;
use bdb_mlkit::{ItemCf, NaiveBayes};
use std::time::Instant;

/// Library-scale baseline review count (the paper: 2^15 vertices for CF
/// and 32 GB text for Bayes — both derived from the review seed).
pub const REVIEWS_BASELINE: u64 = 4_000;

fn reviews(scale: &RunScale, n: u64) -> Vec<bdb_datagen::Review> {
    ReviewGenerator::new(scale.seed_for(60)).generate(n)
}

/// Item-based collaborative filtering over the rating matrix.
#[derive(Debug, Clone, Copy, Default)]
pub struct CfWorkload;

impl Workload for CfWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::CollaborativeFiltering
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let n = scale.native_units(REVIEWS_BASELINE);
        let revs = reviews(scale, n);
        let ratings = reviews_to_ratings(&revs);
        let bytes = n * 20;
        let start = Instant::now();
        let model = ItemCf::train(&ratings, 20);
        // A recommendation pass for the most active users.
        let mut recs = 0usize;
        for user in 1..=50u64 {
            recs += model.recommend(user, 10).len();
        }
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} items, {recs} recommendations", model.item_count()))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let n = scale.traced_units(REVIEWS_BASELINE).max(200);
        let revs = reviews(scale, n);
        let ratings = reviews_to_ratings(&revs);
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        ItemCf::train_traced(&ratings[..ratings.len() / 5 + 1], 20, &mut probe);
        fw.warm(&mut probe);
        probe.reset_stats();
        let model = ItemCf::train_traced(&ratings, 20, &mut probe);
        for (i, &(u, it, _)) in ratings.iter().enumerate() {
            fw.on_map_record(&mut probe, 20);
            if i % 4 == 0 {
                fw.on_emit(&mut probe, 16);
            }
            if i % 64 == 0 {
                model.predict_traced(u, it, &mut probe);
            }
        }
        probe.finish()
    }
}

/// Naive Bayes sentiment classification over review text.
#[derive(Debug, Clone, Copy, Default)]
pub struct BayesWorkload;

impl Workload for BayesWorkload {
    fn id(&self) -> WorkloadId {
        WorkloadId::NaiveBayes
    }

    fn run_native(&self, scale: &RunScale) -> WorkloadReport {
        let n = scale.native_units(REVIEWS_BASELINE);
        let revs = reviews(scale, n);
        let labeled = reviews_to_labeled(&revs);
        let docs: Vec<(usize, String)> = labeled
            .lines()
            .map(|l| {
                let (label, text) = l.split_once('\t').expect("labeled format");
                ((label == "pos") as usize, text.to_owned())
            })
            .collect();
        let bytes: u64 = docs.iter().map(|(_, t)| t.len() as u64).sum();
        let split = docs.len() * 9 / 10;
        let start = Instant::now();
        let model = NaiveBayes::train(&docs[..split], 2);
        let accuracy = model.accuracy(&docs[split..]);
        let seconds = start.elapsed().as_secs_f64();
        WorkloadReport::new(
            self.id(),
            scale.multiplier,
            UserMetric::Dps { input_bytes: bytes, seconds },
            bytes,
        )
        .with_detail(format!("{} vocab, held-out accuracy {accuracy:.2}", model.vocab_size()))
    }

    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport {
        let n = scale.traced_units(REVIEWS_BASELINE).max(100);
        let revs = reviews(scale, n);
        let labeled = reviews_to_labeled(&revs);
        let docs: Vec<(usize, String)> = labeled
            .lines()
            .map(|l| {
                let (label, text) = l.split_once('\t').expect("labeled format");
                ((label == "pos") as usize, text.to_owned())
            })
            .collect();
        let mut probe = SimProbe::new(machine);
        let mut fw = FrameworkModel::new();
        NaiveBayes::train_traced(&docs[..docs.len() / 5 + 1], 2, &mut probe);
        fw.warm(&mut probe);
        probe.reset_stats();
        let model = NaiveBayes::train_traced(&docs, 2, &mut probe);
        for (i, (_, text)) in docs.iter().enumerate() {
            fw.on_map_record(&mut probe, text.len());
            if i % 16 == 0 {
                model.predict_traced(text, &mut probe);
            }
        }
        probe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cf_trains_and_recommends() {
        let r = CfWorkload.run_native(&RunScale::quick());
        assert!(r.detail.contains("items"));
        assert!(r.metric.value() > 0.0);
    }

    #[test]
    fn bayes_learns_sentiment() {
        let r = BayesWorkload.run_native(&RunScale::quick());
        let accuracy: f64 =
            r.detail.rsplit(' ').next().and_then(|s| s.parse().ok()).expect("accuracy in detail");
        assert!(accuracy > 0.7, "sentiment signal should be learnable: {accuracy}");
    }

    #[test]
    fn bayes_has_lowest_int_fp_ratio_shape() {
        // Paper Figure 4: Bayes has the suite's minimum int:fp ratio.
        let bayes = BayesWorkload.run_traced(&RunScale::quick(), MachineConfig::xeon_e5645());
        let ratio = bayes.mix.int_to_fp_ratio();
        assert!(ratio.is_finite(), "Bayes does FP (log-space)");
        assert!(bayes.mix.fp_ops > 0);
    }

    #[test]
    fn cf_traced_includes_framework() {
        let r = CfWorkload.run_traced(&RunScale::quick(), MachineConfig::xeon_e5645());
        assert!(r.mix.other > 0);
        assert!(r.instructions() > 1000);
    }
}
