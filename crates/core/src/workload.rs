//! The workload abstraction and the 19-workload taxonomy of Table 4.

use crate::report::WorkloadReport;
use crate::scale::RunScale;
use bdb_archsim::{CharacterizationReport, MachineConfig};
use std::fmt;

/// Application types from the paper's methodology (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplicationType {
    /// Latency-sensitive request/response services.
    OnlineService,
    /// Long-running batch computations.
    OfflineAnalytics,
    /// Interactive analytic queries.
    RealtimeAnalytics,
}

impl fmt::Display for ApplicationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ApplicationType::OnlineService => "Online Service",
            ApplicationType::OfflineAnalytics => "Offline Analytics",
            ApplicationType::RealtimeAnalytics => "Realtime Analytics",
        })
    }
}

/// The nineteen workloads, in the paper's Table 6 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum WorkloadId {
    Sort,
    Grep,
    WordCount,
    Bfs,
    Read,
    Write,
    Scan,
    SelectQuery,
    AggregateQuery,
    JoinQuery,
    NutchServer,
    PageRank,
    Index,
    OlioServer,
    KMeans,
    ConnectedComponents,
    RubisServer,
    CollaborativeFiltering,
    NaiveBayes,
}

impl WorkloadId {
    /// All nineteen, Table 6 order.
    pub const ALL: [WorkloadId; 19] = [
        WorkloadId::Sort,
        WorkloadId::Grep,
        WorkloadId::WordCount,
        WorkloadId::Bfs,
        WorkloadId::Read,
        WorkloadId::Write,
        WorkloadId::Scan,
        WorkloadId::SelectQuery,
        WorkloadId::AggregateQuery,
        WorkloadId::JoinQuery,
        WorkloadId::NutchServer,
        WorkloadId::PageRank,
        WorkloadId::Index,
        WorkloadId::OlioServer,
        WorkloadId::KMeans,
        WorkloadId::ConnectedComponents,
        WorkloadId::RubisServer,
        WorkloadId::CollaborativeFiltering,
        WorkloadId::NaiveBayes,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadId::Sort => "Sort",
            WorkloadId::Grep => "Grep",
            WorkloadId::WordCount => "WordCount",
            WorkloadId::Bfs => "BFS",
            WorkloadId::Read => "Read",
            WorkloadId::Write => "Write",
            WorkloadId::Scan => "Scan",
            WorkloadId::SelectQuery => "Select Query",
            WorkloadId::AggregateQuery => "Aggregate Query",
            WorkloadId::JoinQuery => "Join Query",
            WorkloadId::NutchServer => "Nutch Server",
            WorkloadId::PageRank => "PageRank",
            WorkloadId::Index => "Index",
            WorkloadId::OlioServer => "Olio Server",
            WorkloadId::KMeans => "K-means",
            WorkloadId::ConnectedComponents => "Connected Components",
            WorkloadId::RubisServer => "Rubis Server",
            WorkloadId::CollaborativeFiltering => "Collaborative Filtering",
            WorkloadId::NaiveBayes => "Naive Bayes",
        }
    }

    /// Application type (Table 4).
    pub fn application_type(&self) -> ApplicationType {
        use WorkloadId::*;
        match self {
            Read | Write | Scan | NutchServer | OlioServer | RubisServer => {
                ApplicationType::OnlineService
            }
            SelectQuery | AggregateQuery | JoinQuery => ApplicationType::RealtimeAnalytics,
            _ => ApplicationType::OfflineAnalytics,
        }
    }

    /// The software stack the paper runs this workload on (Table 6).
    pub fn paper_stack(&self) -> &'static str {
        use WorkloadId::*;
        match self {
            Sort
            | Grep
            | WordCount
            | PageRank
            | Index
            | KMeans
            | ConnectedComponents
            | CollaborativeFiltering
            | NaiveBayes => "Hadoop",
            Bfs => "MPI",
            Read | Write | Scan => "HBase",
            SelectQuery | AggregateQuery | JoinQuery => "Hive",
            NutchServer => "Hadoop (Nutch)",
            OlioServer | RubisServer => "MySQL",
        }
    }

    /// The input description of the paper's Table 6 (at multiplier 1).
    pub fn paper_input(&self) -> &'static str {
        use WorkloadId::*;
        match self {
            Sort | Grep | WordCount | Read | Write | Scan | SelectQuery | AggregateQuery
            | JoinQuery | NaiveBayes | KMeans => "32 GB data",
            Bfs | ConnectedComponents | CollaborativeFiltering => "2^15 vertices",
            PageRank | Index => "10^6 pages",
            NutchServer | OlioServer | RubisServer => "100 req/s",
        }
    }

    /// The application scenario grouping of Table 4.
    pub fn scenario(&self) -> &'static str {
        use WorkloadId::*;
        match self {
            Sort | Grep | WordCount | Bfs => "Micro Benchmarks",
            Read | Write | Scan => "Basic Datastore Operations (Cloud OLTP)",
            SelectQuery | AggregateQuery | JoinQuery => "Relational Query",
            NutchServer | PageRank | Index => "Search Engine",
            OlioServer | KMeans | ConnectedComponents => "Social Network",
            RubisServer | CollaborativeFiltering | NaiveBayes => "E-commerce",
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One runnable workload.
///
/// Implementations live in [`crate::workloads`]; [`crate::Suite`] owns a
/// boxed instance per [`WorkloadId`].
pub trait Workload: Send {
    /// Which workload this is.
    fn id(&self) -> WorkloadId;

    /// Runs at native speed (parallel, uninstrumented) and reports the
    /// user-perceivable metric.
    fn run_native(&self, scale: &RunScale) -> WorkloadReport;

    /// Runs single-threaded on the simulated `machine` and reports the
    /// micro-architectural characterization. Traced inputs are smaller
    /// than native inputs (see [`RunScale::traced_units`]) so simulation
    /// stays tractable, but still scale with the multiplier.
    fn run_traced(&self, scale: &RunScale, machine: MachineConfig) -> CharacterizationReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_workloads() {
        assert_eq!(WorkloadId::ALL.len(), 19);
        let unique: std::collections::HashSet<_> = WorkloadId::ALL.iter().collect();
        assert_eq!(unique.len(), 19);
    }

    #[test]
    fn type_partition_matches_table4() {
        use ApplicationType::*;
        let count = |t: ApplicationType| {
            WorkloadId::ALL.iter().filter(|w| w.application_type() == t).count()
        };
        assert_eq!(count(OnlineService), 6);
        assert_eq!(count(RealtimeAnalytics), 3);
        assert_eq!(count(OfflineAnalytics), 10);
    }

    #[test]
    fn scenarios_cover_table4_rows() {
        let scenarios: std::collections::HashSet<_> =
            WorkloadId::ALL.iter().map(|w| w.scenario()).collect();
        assert_eq!(scenarios.len(), 6);
    }

    #[test]
    fn names_and_stacks_nonempty() {
        for w in WorkloadId::ALL {
            assert!(!w.name().is_empty());
            assert!(!w.paper_stack().is_empty());
            assert!(!w.paper_input().is_empty());
        }
    }
}
