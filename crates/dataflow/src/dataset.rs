//! The lazily evaluated, lineage-tracked dataset abstraction.

use crate::trace::DataflowTraceModel;
use bdb_archsim::Probe;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

/// Counters accumulated while evaluating one action.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Records that flowed through transformations.
    pub records_processed: u64,
    /// Approximate bytes moved through wide (shuffle) operations.
    pub shuffle_bytes: u64,
    /// Wide operations executed (stage boundaries).
    pub stages: u64,
    /// Times a cached dataset was served from memory.
    pub cache_hits: u64,
    /// Times a cached dataset was materialized.
    pub cache_materializations: u64,
}

/// Evaluation context threaded through the lineage: statistics plus the
/// optional instrumentation sink.
pub struct ExecContext<'p> {
    /// Counters for this action.
    pub stats: ExecStats,
    probe: Option<&'p mut dyn Probe>,
    model: DataflowTraceModel,
}

impl<'p> ExecContext<'p> {
    /// A context without instrumentation.
    pub fn new() -> Self {
        Self { stats: ExecStats::default(), probe: None, model: DataflowTraceModel::new() }
    }

    /// A context reporting micro-architectural events to `probe`.
    pub fn traced(probe: &'p mut dyn Probe) -> Self {
        let mut model = DataflowTraceModel::new();
        model.warm(probe);
        Self { stats: ExecStats::default(), probe: Some(probe), model }
    }

    /// One record through a narrow (fused, in-memory) transformation.
    fn on_record(&mut self, bytes: usize) {
        self.stats.records_processed += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            self.model.on_record(p, bytes);
        }
    }

    /// One record through a wide operation (hash shuffle, in memory).
    fn on_shuffle(&mut self, bytes: usize) {
        self.stats.shuffle_bytes += bytes as u64;
        if let Some(p) = self.probe.as_deref_mut() {
            self.model.on_shuffle_record(p, bytes);
        }
    }

    fn on_stage(&mut self) {
        self.stats.stages += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            self.model.on_stage(p);
        }
    }
}

impl Default for ExecContext<'_> {
    fn default() -> Self {
        Self::new()
    }
}

type Compute<T> = Rc<dyn Fn(&mut ExecContext<'_>) -> Arc<Vec<T>>>;

struct Inner<T> {
    compute: Compute<T>,
    cache: RefCell<Option<Arc<Vec<T>>>>,
    cached: bool,
    name: &'static str,
}

/// A lazily evaluated collection with Spark-style transformations.
///
/// Transformations build lineage; actions ([`Dataset::collect`],
/// [`Dataset::count`], [`Dataset::collect_traced`]) evaluate it.
/// [`Dataset::cache`] pins the result in memory so iterative jobs pay
/// the lineage only once — the engine's defining difference from the
/// MapReduce stack.
pub struct Dataset<T> {
    inner: Rc<Inner<T>>,
}

impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self { inner: Rc::clone(&self.inner) }
    }
}

impl<T: Clone + 'static> Dataset<T> {
    fn from_compute(name: &'static str, compute: Compute<T>) -> Self {
        Self { inner: Rc::new(Inner { compute, cache: RefCell::new(None), cached: false, name }) }
    }

    /// A dataset over an in-memory vector (the "parallelize" source).
    pub fn from_vec(data: Vec<T>) -> Self {
        let shared = Arc::new(data);
        Self::from_compute("source", Rc::new(move |_| Arc::clone(&shared)))
    }

    /// The operation name at the head of the lineage (for debugging).
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Evaluates this dataset within `ctx`, honoring the cache.
    pub fn eval(&self, ctx: &mut ExecContext<'_>) -> Arc<Vec<T>> {
        if let Some(hit) = self.inner.cache.borrow().as_ref() {
            ctx.stats.cache_hits += 1;
            return Arc::clone(hit);
        }
        let result = (self.inner.compute)(ctx);
        if self.inner.cached {
            ctx.stats.cache_materializations += 1;
            *self.inner.cache.borrow_mut() = Some(Arc::clone(&result));
        }
        result
    }

    /// Marks the dataset's result for in-memory reuse. Descendant
    /// evaluations after the first are served from memory.
    pub fn cache(self) -> Self {
        Self {
            inner: Rc::new(Inner {
                compute: {
                    let parent = self.clone();
                    Rc::new(move |ctx| parent.eval(ctx))
                },
                cache: RefCell::new(None),
                cached: true,
                name: "cache",
            }),
        }
    }

    /// Element-wise transformation.
    pub fn map<U: Clone + 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Dataset<U> {
        let parent = self.clone();
        Dataset::from_compute(
            "map",
            Rc::new(move |ctx| {
                let input = parent.eval(ctx);
                let mut out = Vec::with_capacity(input.len());
                for record in input.iter() {
                    ctx.on_record(std::mem::size_of::<T>());
                    out.push(f(record));
                }
                Arc::new(out)
            }),
        )
    }

    /// Keeps records satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool + 'static) -> Dataset<T> {
        let parent = self.clone();
        Dataset::from_compute(
            "filter",
            Rc::new(move |ctx| {
                let input = parent.eval(ctx);
                let mut out = Vec::new();
                for record in input.iter() {
                    ctx.on_record(std::mem::size_of::<T>());
                    if pred(record) {
                        out.push(record.clone());
                    }
                }
                Arc::new(out)
            }),
        )
    }

    /// One-to-many transformation.
    pub fn flat_map<U: Clone + 'static>(&self, f: impl Fn(&T) -> Vec<U> + 'static) -> Dataset<U> {
        let parent = self.clone();
        Dataset::from_compute(
            "flat_map",
            Rc::new(move |ctx| {
                let input = parent.eval(ctx);
                let mut out = Vec::new();
                for record in input.iter() {
                    ctx.on_record(std::mem::size_of::<T>());
                    out.extend(f(record));
                }
                Arc::new(out)
            }),
        )
    }

    /// Pairs each record with a key, producing a keyed dataset.
    pub fn key_by<K: Clone + 'static>(&self, f: impl Fn(&T) -> K + 'static) -> Dataset<(K, T)> {
        self.map(move |t| (f(t), t.clone()))
    }

    /// Concatenates two datasets.
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let a = self.clone();
        let b = other.clone();
        Dataset::from_compute(
            "union",
            Rc::new(move |ctx| {
                let left = a.eval(ctx);
                let right = b.eval(ctx);
                let mut out = Vec::with_capacity(left.len() + right.len());
                out.extend(left.iter().cloned());
                out.extend(right.iter().cloned());
                Arc::new(out)
            }),
        )
    }

    /// Action: materializes the dataset (uninstrumented).
    pub fn collect(&self) -> Vec<T> {
        let mut ctx = ExecContext::new();
        self.eval(&mut ctx).as_ref().clone()
    }

    /// Action: materializes the dataset and returns the statistics too.
    pub fn collect_stats(&self) -> (Vec<T>, ExecStats) {
        let mut ctx = ExecContext::new();
        let out = self.eval(&mut ctx).as_ref().clone();
        (out, ctx.stats)
    }

    /// Action: materializes under instrumentation.
    pub fn collect_traced(&self, probe: &mut dyn Probe) -> (Vec<T>, ExecStats) {
        let mut ctx = ExecContext::traced(probe);
        let out = self.eval(&mut ctx).as_ref().clone();
        (out, ctx.stats)
    }

    /// Action: number of records.
    pub fn count(&self) -> usize {
        let mut ctx = ExecContext::new();
        self.eval(&mut ctx).len()
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Clone + Eq + Hash + Ord + 'static,
    V: Clone + 'static,
{
    /// Transforms values, keeping keys.
    pub fn map_values<W: Clone + 'static>(&self, f: impl Fn(&V) -> W + 'static) -> Dataset<(K, W)> {
        self.map(move |(k, v)| (k.clone(), f(v)))
    }

    /// Wide operation: merges all values of each key with `combine`.
    /// Output is ordered by key (deterministic across runs).
    pub fn reduce_by_key(&self, combine: impl Fn(&V, &V) -> V + 'static) -> Dataset<(K, V)> {
        let parent = self.clone();
        Dataset::from_compute(
            "reduce_by_key",
            Rc::new(move |ctx| {
                ctx.on_stage();
                let input = parent.eval(ctx);
                let mut table: HashMap<K, V> = HashMap::new();
                for (k, v) in input.iter() {
                    ctx.on_shuffle(std::mem::size_of::<(K, V)>());
                    match table.get_mut(k) {
                        Some(acc) => *acc = combine(acc, v),
                        None => {
                            table.insert(k.clone(), v.clone());
                        }
                    }
                }
                let mut out: Vec<(K, V)> = table.into_iter().collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Arc::new(out)
            }),
        )
    }

    /// Wide operation: groups values per key, ordered by key.
    pub fn group_by_key(&self) -> Dataset<(K, Vec<V>)> {
        let parent = self.clone();
        Dataset::from_compute(
            "group_by_key",
            Rc::new(move |ctx| {
                ctx.on_stage();
                let input = parent.eval(ctx);
                let mut table: HashMap<K, Vec<V>> = HashMap::new();
                for (k, v) in input.iter() {
                    ctx.on_shuffle(std::mem::size_of::<(K, V)>());
                    table.entry(k.clone()).or_default().push(v.clone());
                }
                let mut out: Vec<(K, Vec<V>)> = table.into_iter().collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Arc::new(out)
            }),
        )
    }

    /// Wide operation: inner equi-join, ordered by key.
    pub fn join<W: Clone + 'static>(&self, other: &Dataset<(K, W)>) -> Dataset<(K, (V, W))> {
        let left = self.clone();
        let right = other.clone();
        Dataset::from_compute(
            "join",
            Rc::new(move |ctx| {
                ctx.on_stage();
                let l = left.eval(ctx);
                let r = right.eval(ctx);
                let mut build: HashMap<K, Vec<V>> = HashMap::new();
                for (k, v) in l.iter() {
                    ctx.on_shuffle(std::mem::size_of::<(K, V)>());
                    build.entry(k.clone()).or_default().push(v.clone());
                }
                let mut out = Vec::new();
                for (k, w) in r.iter() {
                    ctx.on_shuffle(std::mem::size_of::<(K, W)>());
                    if let Some(vs) = build.get(k) {
                        for v in vs {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Arc::new(out)
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::CountingProbe;

    fn lines() -> Dataset<String> {
        Dataset::from_vec(vec![
            "the quick brown fox".to_owned(),
            "the lazy dog".to_owned(),
            "the quick dog".to_owned(),
        ])
    }

    fn wordcount(ds: &Dataset<String>) -> Dataset<(String, u64)> {
        ds.flat_map(|l| l.split_whitespace().map(str::to_owned).collect())
            .key_by(|w| w.clone())
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b)
    }

    #[test]
    fn wordcount_pipeline() {
        let counts = wordcount(&lines()).collect();
        assert_eq!(counts.len(), 6);
        assert!(counts.contains(&("the".to_owned(), 3)));
        assert!(counts.contains(&("dog".to_owned(), 2)));
        // Ordered by key.
        assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn lazy_until_action() {
        use std::cell::Cell;
        use std::rc::Rc;
        let calls = Rc::new(Cell::new(0));
        let calls2 = Rc::clone(&calls);
        let ds = Dataset::from_vec(vec![1, 2, 3]).map(move |x| {
            calls2.set(calls2.get() + 1);
            x * 2
        });
        assert_eq!(calls.get(), 0, "no work before an action");
        assert_eq!(ds.collect(), vec![2, 4, 6]);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn cache_serves_repeated_evaluations() {
        let base = lines().flat_map(|l| l.split_whitespace().map(str::to_owned).collect()).cache();
        let mut ctx = ExecContext::new();
        let a = base.eval(&mut ctx);
        let b = base.eval(&mut ctx);
        assert!(Arc::ptr_eq(&a, &b), "second eval is the cached Arc");
        assert_eq!(ctx.stats.cache_materializations, 1);
        assert_eq!(ctx.stats.cache_hits, 1);
    }

    #[test]
    fn uncached_lineage_recomputes() {
        let base = lines().flat_map(|l| l.split_whitespace().map(str::to_owned).collect());
        let mut ctx = ExecContext::new();
        base.eval(&mut ctx);
        let first = ctx.stats.records_processed;
        base.eval(&mut ctx);
        assert_eq!(ctx.stats.records_processed, first * 2, "no cache, full recompute");
    }

    #[test]
    fn filter_union_count() {
        let a = Dataset::from_vec((0..10u64).collect());
        let evens = a.filter(|x| x % 2 == 0);
        let odds = a.filter(|x| x % 2 == 1);
        assert_eq!(evens.union(&odds).count(), 10);
        assert_eq!(evens.count(), 5);
    }

    #[test]
    fn group_and_join() {
        let orders = Dataset::from_vec(vec![(1u32, "a"), (1, "b"), (2, "c")]);
        let names = Dataset::from_vec(vec![(1u32, "alice"), (2, "bob"), (3, "carol")]);
        let grouped = orders.group_by_key().collect();
        assert_eq!(grouped[0], (1, vec!["a", "b"]));
        let joined = orders.join(&names).collect();
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&(1, ("a", "alice"))));
        assert!(joined.contains(&(2, ("c", "bob"))));
    }

    #[test]
    fn stats_account_shuffles_and_stages() {
        let (_, stats) = wordcount(&lines()).collect_stats();
        assert_eq!(stats.stages, 1, "one wide op");
        assert!(stats.shuffle_bytes > 0);
        assert!(stats.records_processed >= 10);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn traced_collect_reports_events() {
        let mut probe = CountingProbe::default();
        let (out, stats) = wordcount(&lines()).collect_traced(&mut probe);
        assert_eq!(out.len(), 6);
        assert!(stats.records_processed > 0);
        assert!(probe.mix().total() > 100, "engine events recorded");
    }

    #[test]
    fn iterative_job_with_cache_converges() {
        // A miniature iterative computation (à la PageRank): repeatedly
        // join a static (cached) edge list against evolving ranks.
        let edges = Dataset::from_vec(vec![(0u32, 1u32), (1, 2), (2, 0)]).cache();
        let mut ranks: Vec<(u32, f64)> = vec![(0, 1.0), (1, 1.0), (2, 1.0)];
        let mut ctx = ExecContext::new();
        for _ in 0..5 {
            let rank_ds = Dataset::from_vec(ranks.clone());
            let contribs =
                edges.join(&rank_ds).map(|(_, (dst, r))| (*dst, *r)).reduce_by_key(|a, b| a + b);
            ranks = contribs.eval(&mut ctx).as_ref().clone();
        }
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        assert!((total - 3.0).abs() < 1e-9, "rank mass conserved on a cycle");
        assert!(ctx.stats.cache_hits >= 4, "edges served from cache each iteration");
    }
}
