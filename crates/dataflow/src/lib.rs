//! A Spark-style in-memory dataflow engine — the alternative software
//! stack the BigDataBench paper names as future work.
//!
//! The paper (Section 4.3) includes Spark among the suite's software
//! stacks because it "supports in-memory computing, letting it query
//! data faster than disk-based engines like MapReduce-based systems",
//! and closes (Section 6.3.2) planning to investigate the high
//! front-end stalls "by changing the software stacks under test". This
//! crate makes that experiment runnable:
//!
//! * [`Dataset`] — a lazily evaluated, lineage-tracked collection with
//!   the classic transformations (`map`, `filter`, `flat_map`,
//!   `reduce_by_key`, `group_by_key`, `join`) and explicit [`Dataset::cache`],
//!   so iterative workloads stop re-reading their input (the Spark
//!   story);
//! * [`ExecStats`] — per-action counters (records, shuffle bytes,
//!   stages, cache hits) mirroring the MapReduce engine's `JobStats`;
//! * a **lean** instrumentation model ([`trace::DataflowTraceModel`]):
//!   an in-memory engine with code-generated tight loops has a far
//!   smaller per-record instruction footprint than the Hadoop-style
//!   runtime, which is exactly the stack-depth contrast the paper wants
//!   to measure (see `bdb-bench`'s `ablation` binary).
//!
//! # Example
//!
//! ```
//! use bdb_dataflow::Dataset;
//!
//! let words = Dataset::from_vec(vec!["a b", "b c", "a"])
//!     .flat_map(|line| line.split_whitespace().map(str::to_owned).collect());
//! let mut counts = words.key_by(|w| w.clone()).map_values(|_| 1u64)
//!     .reduce_by_key(|a, b| a + b)
//!     .collect();
//! counts.sort();
//! assert_eq!(counts, vec![
//!     ("a".to_owned(), 2), ("b".to_owned(), 2), ("c".to_owned(), 1),
//! ]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod trace;

pub use dataset::{Dataset, ExecContext, ExecStats};
pub use trace::DataflowTraceModel;
