//! The lean instrumentation model of the in-memory engine.
//!
//! The paper conjectures that the deep software stacks of the
//! MapReduce-era systems cause the high front-end stalls it measures,
//! and plans to test this "by changing the software stacks under test".
//! A Spark-style engine executes fused, code-generated per-record loops:
//! a *small* hot path and a modest cold pool (scheduler, shuffle
//! manager) touched per *stage*, not per record. The result — directly
//! measurable with `bdb-bench`'s `ablation` binary — is an L1I MPKI far
//! below the Hadoop-style `FrameworkModel`'s for the same workload.

use bdb_archsim::layout::regions;
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};

/// Code/heap model for the in-memory dataflow engine.
#[derive(Debug, Clone)]
pub struct DataflowTraceModel {
    stack: SoftwareStack,
    /// Scheduler/shuffle-manager code, touched at stage boundaries.
    stage_stack: SoftwareStack,
    /// In-memory shuffle table area.
    shuffle_base: u64,
    shuffle_span: u64,
    /// Input stream (first read of source data is still cold memory).
    input_base: u64,
    input_span: u64,
    input_cursor: u64,
    event: u64,
}

impl DataflowTraceModel {
    /// Builds the model: ~40 KiB of fused-loop code on the record path
    /// and ~0.3 MiB of scheduler code on the (rare) stage path.
    pub fn new() -> Self {
        // Reuse the MapReduce region bases offset by a disjoint margin so
        // both engines can appear in one simulation without aliasing.
        let mut asp = AddressSpace::with_bases(
            regions::MAPREDUCE_HEAP + (1 << 40),
            regions::MAPREDUCE_CODE + (8 << 20),
        );
        let stack = SoftwareStack::builder("dataflow-record-path")
            // Fused loops: tiny hot bodies, almost no cold path.
            .layer(&mut asp, "fused-operators", 4, 512, 4, 2048, 1, 512)
            .build();
        let stage_stack = SoftwareStack::builder("dataflow-scheduler")
            .layer(&mut asp, "dag-scheduler", 4, 512, 48, 4096, 2, 1)
            .layer(&mut asp, "shuffle-manager", 4, 512, 32, 4096, 1, 1)
            .build();
        let shuffle_span = 6 << 20;
        let shuffle_base = asp.alloc(shuffle_span, "shuffle-tables");
        let input_span = 256 << 20;
        let input_base = asp.alloc(input_span, "input-stream");
        Self {
            stack,
            stage_stack,
            shuffle_base,
            shuffle_span,
            input_base,
            input_span,
            input_cursor: 0,
            event: 0,
        }
    }

    /// Static code footprint of the record path in bytes (small!).
    pub fn record_path_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// Pre-touches both code paths.
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
        self.stage_stack.warm(probe);
    }

    /// One record through a fused narrow-transformation loop.
    pub fn on_record<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event);
        // First touch of source data still streams from memory; the
        // engine's win is not re-reading it on every pass of an
        // iterative job (cache hits skip this entirely).
        let touched = (bytes as u64).clamp(8, 4096);
        probe.load(self.input_base + self.input_cursor % self.input_span, touched as u32);
        self.input_cursor += touched;
        probe.int_ops(6 + touched / 16);
    }

    /// One record through an in-memory hash shuffle.
    pub fn on_shuffle_record<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event.wrapping_mul(3));
        let slot = bdb_archsim::layout::splitmix64(self.event) % self.shuffle_span;
        probe.store(self.shuffle_base + (slot & !63), bytes.clamp(8, 256) as u32);
        probe.int_ops(10);
        probe.branch(self.event.is_multiple_of(3));
    }

    /// A stage boundary: DAG scheduling and shuffle setup.
    pub fn on_stage<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.stage_stack.invoke(probe, self.event);
        probe.int_ops(200);
    }
}

impl Default for DataflowTraceModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};
    use bdb_mapreduce_footprint::hadoop_footprint;

    /// Pull the Hadoop-model footprint without a circular dev-dependency:
    /// the calibration constant is what matters, asserted against the
    /// MapReduce crate in the integration tests.
    mod bdb_mapreduce_footprint {
        pub fn hadoop_footprint() -> u64 {
            // task-runtime 96 + serializer 48 + buffer-io 32 + memory 48
            // cold bodies x 4096B (see bdb-mapreduce's FrameworkModel).
            (96 + 48 + 32 + 48) * 4096
        }
    }

    #[test]
    fn record_path_is_an_order_of_magnitude_leaner_than_hadoop() {
        let m = DataflowTraceModel::new();
        assert!(
            m.record_path_footprint() * 10 < hadoop_footprint(),
            "fused loops {} vs Hadoop cold pool {}",
            m.record_path_footprint(),
            hadoop_footprint()
        );
    }

    #[test]
    fn records_emit_lean_events() {
        let mut m = DataflowTraceModel::new();
        let mut p = CountingProbe::default();
        m.on_record(&mut p, 100);
        let per_record = p.mix().total();
        assert!(per_record < 400, "fused loop cost {per_record} should be small");
    }

    #[test]
    fn steady_state_l1i_is_low() {
        let mut m = DataflowTraceModel::new();
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        m.warm(&mut p);
        for i in 0..2000u64 {
            m.on_record(&mut p, 64);
            if i % 4 == 0 {
                m.on_shuffle_record(&mut p, 16);
            }
        }
        p.reset_stats();
        for i in 0..10_000u64 {
            m.on_record(&mut p, 64);
            if i % 4 == 0 {
                m.on_shuffle_record(&mut p, 16);
            }
        }
        let r = p.finish();
        assert!(
            r.l1i_mpki() < 5.0,
            "in-memory engine should be front-end friendly: {}",
            r.l1i_mpki()
        );
    }

    #[test]
    fn stage_boundaries_touch_scheduler_code() {
        let mut m = DataflowTraceModel::new();
        let mut p = CountingProbe::default();
        m.on_stage(&mut p);
        assert!(p.mix().total() > 500, "scheduler work per stage");
    }
}
