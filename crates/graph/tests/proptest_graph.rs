//! Property-based tests: graph algorithms against naive references on
//! random graphs.

use bdb_graph::{bfs, cc, pagerank, CsrGraph, PageRankConfig};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Random undirected edge list over `n` vertices.
fn undirected(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges).prop_map(|pairs| {
        let mut edges = Vec::with_capacity(pairs.len() * 2);
        for (a, b) in pairs {
            if a != b {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
        edges
    })
}

/// Naive BFS with an explicit queue.
fn naive_bfs(graph: &CsrGraph, source: u32) -> Vec<Option<u32>> {
    let mut levels = vec![None; graph.nodes() as usize];
    levels[source as usize] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize].expect("visited") + 1;
        for &w in graph.neighbors(v) {
            if levels[w as usize].is_none() {
                levels[w as usize] = Some(next);
                queue.push_back(w);
            }
        }
    }
    levels
}

proptest! {
    /// Library BFS equals naive BFS on arbitrary directed graphs.
    #[test]
    fn bfs_matches_naive(
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..300),
        source in 0u32..60,
    ) {
        let graph = CsrGraph::from_edges(60, &edges);
        prop_assert_eq!(bfs::bfs(&graph, source), naive_bfs(&graph, source));
    }

    /// Rank-partitioned BFS equals serial BFS for any rank count.
    #[test]
    fn partitioned_bfs_invariant(
        edges in undirected(40, 150),
        source in 0u32..40,
        ranks in 1u32..9,
    ) {
        let graph = CsrGraph::from_edges(40, &edges);
        let serial = bfs::bfs(&graph, source);
        let partitioned = bfs::bfs_partitioned(&graph, source, ranks);
        prop_assert_eq!(partitioned.levels, serial);
    }

    /// Label propagation equals union-find on undirected graphs.
    #[test]
    fn cc_agreement(edges in undirected(50, 200)) {
        let graph = CsrGraph::from_edges(50, &edges);
        let (lp, _) = cc::label_propagation(&graph);
        prop_assert_eq!(lp, cc::connected_components(&graph));
    }

    /// Component labels are canonical: every label is the minimum vertex
    /// id of its component, and connected vertices share labels.
    #[test]
    fn cc_labels_canonical(edges in undirected(40, 120)) {
        let graph = CsrGraph::from_edges(40, &edges);
        let labels = cc::connected_components(&graph);
        for v in 0..graph.nodes() {
            prop_assert!(labels[v as usize] <= v, "label is a component minimum");
            for &w in graph.neighbors(v) {
                prop_assert_eq!(labels[v as usize], labels[w as usize]);
            }
        }
    }

    /// PageRank sums to 1 and is non-negative on any graph.
    #[test]
    fn pagerank_is_distribution(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..150)) {
        let graph = CsrGraph::from_edges(40, &edges);
        let (ranks, _) = pagerank::pagerank(&graph, PageRankConfig::default());
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(ranks.iter().all(|&r| r >= 0.0));
    }

    /// CSR round-trip: neighbors reproduce the edge multiset per source.
    #[test]
    fn csr_preserves_edges(edges in proptest::collection::vec((0u32..30, 0u32..30), 0..200)) {
        let graph = CsrGraph::from_edges(30, &edges);
        prop_assert_eq!(graph.edges(), edges.len() as u64);
        let mut expect: Vec<Vec<u32>> = vec![Vec::new(); 30];
        for &(s, d) in &edges {
            expect[s as usize].push(d);
        }
        for v in 0..30u32 {
            prop_assert_eq!(graph.neighbors(v), expect[v as usize].as_slice());
        }
    }
}
