//! Breadth-first search, serial and MPI-style rank-partitioned.

use crate::csr::CsrGraph;
use crate::trace::GraphTraceModel;
use bdb_archsim::{NullProbe, Probe};

/// Level-synchronous BFS from `source`. Returns each vertex's level
/// (`None` for unreachable).
pub fn bfs(graph: &CsrGraph, source: u32) -> Vec<Option<u32>> {
    bfs_traced(graph, source, &mut NullProbe, &mut None)
}

/// Instrumented [`bfs`].
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_traced<P: Probe + ?Sized>(
    graph: &CsrGraph,
    source: u32,
    probe: &mut P,
    trace: &mut Option<GraphTraceModel>,
) -> Vec<Option<u32>> {
    assert!(source < graph.nodes(), "source out of range");
    let n = graph.nodes() as usize;
    let mut levels: Vec<Option<u32>> = vec![None; n];
    levels[source as usize] = Some(0);
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        if let Some(t) = trace.as_mut() {
            t.on_superstep(probe);
        }
        let mut next = Vec::new();
        for &v in &frontier {
            if let Some(t) = trace.as_mut() {
                t.read_offsets(probe, v);
                t.read_adjacency(probe, graph.offset_of(v), graph.out_degree(v));
            }
            for &w in graph.neighbors(v) {
                if let Some(t) = trace.as_mut() {
                    t.access_value(probe, w, false);
                }
                if levels[w as usize].is_none() {
                    levels[w as usize] = Some(level + 1);
                    if let Some(t) = trace.as_mut() {
                        t.access_value(probe, w, true);
                        t.push_frontier(probe, next.len() as u64);
                    }
                    next.push(w);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    levels
}

/// Result of a rank-partitioned BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Per-vertex level (`None` = unreachable).
    pub levels: Vec<Option<u32>>,
    /// Number of level-synchronous supersteps executed.
    pub supersteps: u32,
    /// Vertices sent between ranks across all supersteps — the MPI
    /// communication volume the paper's BFS pays.
    pub remote_sends: u64,
    /// Vertices that stayed rank-local.
    pub local_visits: u64,
}

/// MPI-style BFS: vertices are block-partitioned over `ranks` logical
/// processes; discovering a vertex owned by another rank counts as a
/// remote send (one message entry), mirroring the paper's MPI BFS.
///
/// # Panics
///
/// Panics if `ranks` is zero or `source` is out of range.
pub fn bfs_partitioned(graph: &CsrGraph, source: u32, ranks: u32) -> BfsResult {
    assert!(ranks > 0, "need at least one rank");
    assert!(source < graph.nodes(), "source out of range");
    let n = graph.nodes();
    let owner = |v: u32| -> u32 {
        // Block partitioning, as classic MPI BFS does.
        let block = n.div_ceil(ranks).max(1);
        (v / block).min(ranks - 1)
    };
    let mut levels: Vec<Option<u32>> = vec![None; n as usize];
    levels[source as usize] = Some(0);
    // Per-rank frontier queues.
    let mut frontiers: Vec<Vec<u32>> = vec![Vec::new(); ranks as usize];
    frontiers[owner(source) as usize].push(source);
    let mut supersteps = 0;
    let mut remote_sends = 0u64;
    let mut local_visits = 0u64;
    let mut level = 0u32;
    while frontiers.iter().any(|f| !f.is_empty()) {
        supersteps += 1;
        // Each rank expands its own frontier, producing messages.
        let mut inboxes: Vec<Vec<u32>> = vec![Vec::new(); ranks as usize];
        for rank in 0..ranks {
            let frontier = std::mem::take(&mut frontiers[rank as usize]);
            for v in frontier {
                for &w in graph.neighbors(v) {
                    let dst = owner(w);
                    if dst == rank {
                        local_visits += 1;
                    } else {
                        remote_sends += 1;
                    }
                    inboxes[dst as usize].push(w);
                }
            }
        }
        // Each rank drains its inbox, discovering unvisited vertices.
        for rank in 0..ranks {
            for w in inboxes[rank as usize].drain(..) {
                if levels[w as usize].is_none() {
                    levels[w as usize] = Some(level + 1);
                    frontiers[rank as usize].push(w);
                }
            }
        }
        level += 1;
    }
    BfsResult { levels, supersteps, remote_sends, local_visits }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undirected chain plus a disconnected vertex.
    fn chain() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
    }

    #[test]
    fn levels_on_chain() {
        let levels = bfs(&chain(), 0);
        assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn bfs_from_middle() {
        let levels = bfs(&chain(), 2);
        assert_eq!(levels, vec![Some(2), Some(1), Some(0), Some(1), None]);
    }

    #[test]
    fn partitioned_matches_serial() {
        let g = chain();
        let serial = bfs(&g, 0);
        for ranks in [1, 2, 3, 5, 8] {
            let par = bfs_partitioned(&g, 0, ranks);
            assert_eq!(par.levels, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn partitioned_counts_communication() {
        let g = chain();
        let one = bfs_partitioned(&g, 0, 1);
        assert_eq!(one.remote_sends, 0, "single rank sends nothing");
        assert!(one.local_visits > 0);
        let four = bfs_partitioned(&g, 0, 4);
        assert!(four.remote_sends > 0, "partitioning forces messages");
        assert_eq!(
            one.local_visits + one.remote_sends,
            four.local_visits + four.remote_sends,
            "total edge traversals are partition-invariant"
        );
    }

    #[test]
    fn supersteps_equal_eccentricity_plus_one() {
        let r = bfs_partitioned(&chain(), 0, 2);
        assert_eq!(r.supersteps, 4);
    }

    #[test]
    fn traced_bfs_matches_and_records() {
        use bdb_archsim::CountingProbe;
        let g = chain();
        let mut trace = Some(crate::trace::GraphTraceModel::new(&g));
        let mut probe = CountingProbe::default();
        let traced = bfs_traced(&g, 0, &mut probe, &mut trace);
        assert_eq!(traced, bfs(&g, 0));
        assert!(probe.mix().loads > 0);
        assert!(probe.mix().stores > 0);
    }

    #[test]
    fn random_graph_reachability_is_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200u32;
        let mut edges = Vec::new();
        for _ in 0..800 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            edges.push((a, b));
            edges.push((b, a));
        }
        let g = CsrGraph::from_edges(n, &edges);
        let serial = bfs(&g, 0);
        let par = bfs_partitioned(&g, 0, 7);
        assert_eq!(serial, par.levels);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn oob_source_panics() {
        bfs(&chain(), 99);
    }
}
