//! Compressed sparse-row adjacency.

/// An immutable directed graph in CSR form.
///
/// # Example
///
/// ```
/// use bdb_graph::CsrGraph;
/// let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (2, 0)]);
/// assert_eq!(g.nodes(), 3);
/// assert_eq!(g.edges(), 3);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.out_degree(1), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph over `nodes` vertices from directed edges.
    /// Edge order within a source is preserved after a stable sort by
    /// source.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= nodes`.
    pub fn from_edges(nodes: u32, edges: &[(u32, u32)]) -> Self {
        let n = nodes as usize;
        let mut degree = vec![0u64; n];
        for &(s, d) in edges {
            assert!(s < nodes && d < nodes, "edge ({s},{d}) out of range {nodes}");
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            *c += 1;
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    pub fn nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-neighbors of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The CSR offset of `v`'s adjacency (for traced address modeling).
    pub fn offset_of(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// The transposed graph (in-edges become out-edges).
    pub fn transpose(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.targets.len());
        for v in 0..self.nodes() {
            for &t in self.neighbors(v) {
                edges.push((t, v));
            }
        }
        CsrGraph::from_edges(self.nodes(), &edges)
    }

    /// Estimated resident bytes of the CSR arrays.
    pub fn byte_size(&self) -> u64 {
        (self.offsets.len() * 8 + self.targets.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes() {
        let g = CsrGraph::from_edges(4, &[(1, 0), (0, 2), (0, 1), (3, 3)]);
        assert_eq!(g.nodes(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[2, 1], "insertion order preserved");
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(g.edges(), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    fn transpose_reverses() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.transpose().edges(), g.edges());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn byte_size_scales() {
        let g = CsrGraph::from_edges(100, &[(0, 1); 50]);
        assert_eq!(g.byte_size(), 101 * 8 + 50 * 4);
    }
}
