//! Connected components: union-find and label propagation.
//!
//! The paper's CC workload runs label propagation on Hadoop over the
//! Facebook social graph; [`label_propagation`] mirrors that iterative
//! structure (it is the algorithm whose per-iteration cost a MapReduce
//! round pays), while [`connected_components`] provides the classic
//! union-find answer for verification and native runs.

use crate::csr::CsrGraph;
use crate::trace::GraphTraceModel;
use bdb_archsim::{NullProbe, Probe};
use bdb_telemetry::{span, SpanRecorder};

/// Union-find connected components (treating edges as undirected).
/// Returns each vertex's component label = smallest vertex id in its
/// component.
pub fn connected_components(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.nodes() as usize;
    let mut parent: Vec<u32> = (0..graph.nodes()).collect();

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            let grand = parent[parent[v as usize] as usize];
            parent[v as usize] = grand; // path halving
            v = grand;
        }
        v
    }

    for v in 0..graph.nodes() {
        for &w in graph.neighbors(v) {
            let a = find(&mut parent, v);
            let b = find(&mut parent, w);
            if a != b {
                // Union by smaller label so the root is the min id.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }
    let mut labels = vec![0u32; n];
    for v in 0..graph.nodes() {
        labels[v as usize] = find(&mut parent, v);
    }
    labels
}

/// Iterative label propagation (the Hadoop-CC structure): every vertex
/// starts labeled with its own id and repeatedly adopts the minimum
/// label among itself and its neighbors until a fixpoint. Returns
/// `(labels, iterations)`.
pub fn label_propagation(graph: &CsrGraph) -> (Vec<u32>, u32) {
    label_propagation_traced(graph, &mut NullProbe, &mut None)
}

/// [`label_propagation`] with per-iteration spans on `telemetry` (one
/// `cc-iteration` span per synchronous round).
pub fn label_propagation_instrumented(
    graph: &CsrGraph,
    telemetry: &SpanRecorder,
) -> (Vec<u32>, u32) {
    label_propagation_impl(graph, &mut NullProbe, &mut None, telemetry)
}

/// Instrumented [`label_propagation`].
pub fn label_propagation_traced<P: Probe + ?Sized>(
    graph: &CsrGraph,
    probe: &mut P,
    trace: &mut Option<GraphTraceModel>,
) -> (Vec<u32>, u32) {
    label_propagation_impl(graph, probe, trace, &SpanRecorder::disabled())
}

fn label_propagation_impl<P: Probe + ?Sized>(
    graph: &CsrGraph,
    probe: &mut P,
    trace: &mut Option<GraphTraceModel>,
    telemetry: &SpanRecorder,
) -> (Vec<u32>, u32) {
    let _run_span = span!(telemetry, "graph", "connected-components", nodes = graph.nodes());
    let mut labels: Vec<u32> = (0..graph.nodes()).collect();
    let mut iterations = 0;
    loop {
        iterations += 1;
        if probe.is_active() {
            probe.phase(&format!("iter-{iterations}"));
        }
        let counters_before = probe.counters();
        let mut iter_span = span!(telemetry, "graph", "cc-iteration", iter = iterations);
        if let Some(t) = trace.as_mut() {
            t.on_superstep(probe);
        }
        // Synchronous rounds: new labels are computed from the previous
        // round only, exactly like one MapReduce iteration of Hadoop-CC.
        let prev = labels.clone();
        let mut changed = false;
        for v in 0..graph.nodes() {
            if let Some(t) = trace.as_mut() {
                t.read_offsets(probe, v);
                t.read_adjacency(probe, graph.offset_of(v), graph.out_degree(v));
                t.access_value(probe, v, false);
            }
            let mut min = prev[v as usize];
            for &w in graph.neighbors(v) {
                if let Some(t) = trace.as_mut() {
                    t.access_value(probe, w, false);
                }
                probe.int_ops(1);
                min = min.min(prev[w as usize]);
            }
            if min < labels[v as usize] {
                labels[v as usize] = min;
                changed = true;
                if let Some(t) = trace.as_mut() {
                    t.access_value(probe, v, true);
                }
            }
        }
        iter_span.arg("changed", changed);
        if let (Some(b), Some(a)) = (counters_before, probe.counters()) {
            for (k, v) in a.delta_since(&b).named_counters() {
                iter_span.arg(k, v);
            }
        }
        if !changed {
            break;
        }
    }
    (labels, iterations)
}

/// Number of distinct components in a labeling.
pub fn component_count(labels: &[u32]) -> usize {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles and an isolated vertex (undirected edges mirrored).
    fn two_triangles() -> CsrGraph {
        let mut edges = Vec::new();
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            edges.push((a, b));
            edges.push((b, a));
        }
        CsrGraph::from_edges(7, &edges)
    }

    #[test]
    fn union_find_labels_by_min_id() {
        let labels = connected_components(&two_triangles());
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3, 6]);
        assert_eq!(component_count(&labels), 3);
    }

    #[test]
    fn label_propagation_agrees_with_union_find() {
        let g = two_triangles();
        let (lp, iters) = label_propagation(&g);
        assert_eq!(lp, connected_components(&g));
        assert!(iters >= 2, "needs at least propagate + verify rounds");
    }

    #[test]
    fn chain_needs_many_iterations() {
        // Label propagation on a path takes O(diameter) rounds — the
        // Hadoop-CC cost model the paper's workload pays.
        let n = 64u32;
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        let g = CsrGraph::from_edges(n, &edges);
        let (labels, iters) = label_propagation(&g);
        assert!(labels.iter().all(|&l| l == 0));
        assert!(iters > 4, "propagation along a path is slow: {iters}");
    }

    #[test]
    fn random_graph_agreement() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300u32;
        let mut edges = Vec::new();
        for _ in 0..250 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            edges.push((a, b));
            edges.push((b, a));
        }
        let g = CsrGraph::from_edges(n, &edges);
        let (lp, _) = label_propagation(&g);
        assert_eq!(lp, connected_components(&g));
    }

    #[test]
    fn traced_matches_plain() {
        use bdb_archsim::CountingProbe;
        let g = two_triangles();
        let mut probe = CountingProbe::default();
        let mut trace = Some(crate::trace::GraphTraceModel::new(&g));
        let (traced, _) = label_propagation_traced(&g, &mut probe, &mut trace);
        assert_eq!(traced, connected_components(&g));
        assert!(probe.mix().loads > 0);
    }

    #[test]
    fn instrumented_emits_one_span_per_round() {
        let g = two_triangles();
        let telemetry = bdb_telemetry::SpanRecorder::enabled();
        let (labels, iters) = label_propagation_instrumented(&g, &telemetry);
        assert_eq!(labels, connected_components(&g));
        let spans = telemetry.events().iter().filter(|e| e.name == "cc-iteration").count();
        assert_eq!(spans as u32, iters);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = CsrGraph::from_edges(0, &[]);
        assert!(connected_components(&empty).is_empty());
        let single = CsrGraph::from_edges(1, &[]);
        assert_eq!(connected_components(&single), vec![0]);
        let (lp, iters) = label_propagation(&single);
        assert_eq!(lp, vec![0]);
        assert_eq!(iters, 1);
    }
}
