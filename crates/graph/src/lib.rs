//! Graph structures and algorithms for BigDataBench-RS.
//!
//! Three of the paper's workloads are graph algorithms: **BFS** (the
//! micro benchmark run on MPI, Table 6 row 4), **PageRank** (the search
//! engine's offline analytics workload, seeded by the Google web graph)
//! and **Connected Components** (the social-network workload, seeded by
//! the Facebook graph). This crate provides the shared compressed
//! sparse-row representation ([`CsrGraph`]) and the three kernels, each
//! with an instrumented variant that reports its genuine memory-access
//! pattern — the scattered neighbor/rank accesses that give graph
//! workloads their notoriously high data-side miss rates (the paper
//! measures BFS at L2 MPKI 56 and DTLB MPKI 14, the highest in the
//! suite).
//!
//! BFS is additionally offered in a rank-partitioned variant
//! ([`bfs::bfs_partitioned`]) mirroring the paper's MPI implementation:
//! vertices are block-partitioned over logical ranks and frontier
//! exchanges are counted as communication volume.
//!
//! # Example
//!
//! ```
//! use bdb_graph::{CsrGraph, bfs::bfs};
//!
//! // A path 0 - 1 - 2.
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
//! let levels = bfs(&g, 0);
//! assert_eq!(levels, vec![Some(0), Some(1), Some(2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod csr;
pub mod pagerank;
pub mod trace;

pub use bfs::{bfs, bfs_partitioned, BfsResult};
pub use cc::{connected_components, label_propagation, label_propagation_instrumented};
pub use csr::CsrGraph;
pub use pagerank::{pagerank, pagerank_instrumented, PageRankConfig};
pub use trace::GraphTraceModel;
