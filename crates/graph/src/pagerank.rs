//! PageRank by power iteration.

use crate::csr::CsrGraph;
use crate::trace::GraphTraceModel;
use bdb_archsim::{NullProbe, Probe};
use bdb_telemetry::{span, SpanRecorder};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (the canonical 0.85).
    pub damping: f64,
    /// Stop when the L1 delta between iterations falls below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self { damping: 0.85, tolerance: 1e-7, max_iterations: 100 }
    }
}

/// Computes PageRank. Returns `(ranks, iterations)`; ranks sum to 1
/// (dangling mass redistributed uniformly).
pub fn pagerank(graph: &CsrGraph, config: PageRankConfig) -> (Vec<f64>, u32) {
    pagerank_traced(graph, config, &mut NullProbe, &mut None)
}

/// [`pagerank`] with per-iteration spans on `telemetry` (one
/// `pagerank-iteration` span per power-iteration round, carrying the
/// round's L1 delta).
pub fn pagerank_instrumented(
    graph: &CsrGraph,
    config: PageRankConfig,
    telemetry: &SpanRecorder,
) -> (Vec<f64>, u32) {
    pagerank_impl(graph, config, &mut NullProbe, &mut None, telemetry)
}

/// Instrumented [`pagerank`]. The traced access pattern is the push
/// style: stream vertices sequentially, scatter rank contributions to
/// out-neighbors (data-dependent stores into the next-rank array).
pub fn pagerank_traced<P: Probe + ?Sized>(
    graph: &CsrGraph,
    config: PageRankConfig,
    probe: &mut P,
    trace: &mut Option<GraphTraceModel>,
) -> (Vec<f64>, u32) {
    pagerank_impl(graph, config, probe, trace, &SpanRecorder::disabled())
}

fn pagerank_impl<P: Probe + ?Sized>(
    graph: &CsrGraph,
    config: PageRankConfig,
    probe: &mut P,
    trace: &mut Option<GraphTraceModel>,
    telemetry: &SpanRecorder,
) -> (Vec<f64>, u32) {
    let n = graph.nodes() as usize;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let _run_span = span!(telemetry, "graph", "pagerank", nodes = graph.nodes());
    let init = 1.0 / n as f64;
    let mut ranks = vec![init; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    for _ in 0..config.max_iterations {
        iterations += 1;
        if probe.is_active() {
            probe.phase(&format!("iter-{iterations}"));
        }
        let counters_before = probe.counters();
        let mut iter_span = span!(telemetry, "graph", "pagerank-iteration", iter = iterations);
        if let Some(t) = trace.as_mut() {
            t.on_superstep(probe);
        }
        let mut dangling = 0.0;
        next.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..graph.nodes() {
            let deg = graph.out_degree(v);
            if let Some(t) = trace.as_mut() {
                t.read_offsets(probe, v);
                t.access_value(probe, v, false);
            }
            probe.fp_ops(2);
            if deg == 0 {
                dangling += ranks[v as usize];
                continue;
            }
            let share = ranks[v as usize] / deg as f64;
            if let Some(t) = trace.as_mut() {
                t.read_adjacency(probe, graph.offset_of(v), deg);
            }
            for &w in graph.neighbors(v) {
                if let Some(t) = trace.as_mut() {
                    t.access_value(probe, w, true);
                }
                probe.fp_ops(1);
                next[w as usize] += share;
            }
        }
        let dangling_share = dangling / n as f64;
        let base = (1.0 - config.damping) / n as f64;
        let mut delta = 0.0;
        for v in 0..n {
            let r = base + config.damping * (next[v] + dangling_share);
            probe.fp_ops(4);
            delta += (r - ranks[v]).abs();
            ranks[v] = r;
        }
        iter_span.arg("delta", delta);
        if let (Some(b), Some(a)) = (counters_before, probe.counters()) {
            for (k, v) in a.delta_since(&b).named_counters() {
                iter_span.arg(k, v);
            }
        }
        if delta < config.tolerance {
            break;
        }
    }
    (ranks, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn uniform_on_cycle() {
        let (ranks, _) = pagerank(&cycle(10), PageRankConfig::default());
        for r in &ranks {
            assert!((r - 0.1).abs() < 1e-6, "cycle is symmetric: {r}");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        // A graph with a dangling node (2 has no out-edges).
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let (ranks, _) = pagerank(&g, PageRankConfig::default());
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star pointing inward: everyone links to 0.
        let edges: Vec<(u32, u32)> = (1..10).map(|i| (i, 0)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let (ranks, _) = pagerank(&g, PageRankConfig::default());
        for leaf in 1..10 {
            assert!(ranks[0] > ranks[leaf] * 3.0, "hub should dominate");
        }
    }

    #[test]
    fn converges_and_reports_iterations() {
        let (_, iters) = pagerank(&cycle(50), PageRankConfig::default());
        assert!(iters < 100, "cycle converges quickly: {iters}");
        let strict = PageRankConfig { max_iterations: 3, ..Default::default() };
        let (_, capped) = pagerank(&cycle(50), strict);
        assert!(capped <= 3);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (ranks, iters) = pagerank(&g, PageRankConfig::default());
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }

    #[test]
    fn instrumented_emits_one_span_per_iteration() {
        let telemetry = bdb_telemetry::SpanRecorder::enabled();
        let (ranks, iters) =
            pagerank_instrumented(&cycle(10), PageRankConfig::default(), &telemetry);
        let (plain, _) = pagerank(&cycle(10), PageRankConfig::default());
        assert_eq!(ranks, plain);
        let spans = telemetry.events().iter().filter(|e| e.name == "pagerank-iteration").count();
        assert_eq!(spans as u32, iters);
    }

    #[test]
    fn traced_matches_plain() {
        use bdb_archsim::CountingProbe;
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 0), (4, 0), (5, 2)]);
        let mut probe = CountingProbe::default();
        let mut trace = Some(crate::trace::GraphTraceModel::new(&g));
        let (traced, _) = pagerank_traced(&g, PageRankConfig::default(), &mut probe, &mut trace);
        let (plain, _) = pagerank(&g, PageRankConfig::default());
        assert_eq!(traced, plain);
        assert!(probe.mix().fp_ops > 0, "PageRank does real FP work");
        assert!(probe.mix().loads > 0);
    }
}
