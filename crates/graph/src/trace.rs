//! Access-pattern instrumentation for graph kernels.
//!
//! Graph algorithms touch three arrays: CSR offsets (sequential-ish),
//! CSR targets (streaming within a vertex's adjacency), and a per-vertex
//! value array (rank, level, label) accessed *through* the targets —
//! i.e. data-dependent scatter/gather. The model places those arrays at
//! synthetic addresses so traced kernels emit the genuine pattern, plus
//! a thin runtime stack (the paper's BFS runs on MPI, whose C runtime is
//! small — unlike the Hadoop workloads, graph kernels are not
//! instruction-footprint-bound but *data-bound*).

use crate::csr::CsrGraph;
use bdb_archsim::layout::regions;
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};

/// Synthetic base addresses for one graph's arrays.
#[derive(Debug, Clone)]
pub struct GraphTraceModel {
    stack: SoftwareStack,
    offsets_base: u64,
    targets_base: u64,
    values_base: u64,
    frontier_base: u64,
    event: u64,
}

impl GraphTraceModel {
    /// Lays out arrays for `graph` and a thin MPI-like runtime stack.
    pub fn new(graph: &CsrGraph) -> Self {
        let mut asp = AddressSpace::with_bases(regions::GRAPH_HEAP, regions::GRAPH_CODE);
        let stack = SoftwareStack::builder("graph-runtime")
            .layer(&mut asp, "kernel", 4, 512, 2, 2048, 1, 64)
            .layer(&mut asp, "comm-runtime", 2, 512, 8, 2048, 1, 32)
            .build();
        let n = graph.nodes() as u64;
        let offsets_base = asp.alloc((n + 1) * 8, "csr-offsets");
        let targets_base = asp.alloc(graph.edges() * 4, "csr-targets");
        // One cache line per vertex: graph runtimes box their per-vertex
        // state (Hadoop objects / MPI message slots), which is what
        // makes the paper's BFS the DTLB outlier.
        let values_base = asp.alloc(n * 64, "vertex-values");
        let frontier_base = asp.alloc(n * 4, "frontier");
        Self { stack, offsets_base, targets_base, values_base, frontier_base, event: 0 }
    }

    /// Static code footprint in bytes (small by design).
    pub fn code_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// Pre-touches the runtime code (ramp-up).
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
    }

    /// Per-iteration runtime overhead (barrier / superstep bookkeeping).
    pub fn on_superstep<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.event = self.event.wrapping_add(1);
        self.stack.invoke(probe, self.event);
        probe.int_ops(20);
    }

    /// Reads `offsets[v]` and `offsets[v+1]`.
    pub fn read_offsets<P: Probe + ?Sized>(&mut self, probe: &mut P, v: u32) {
        probe.load(self.offsets_base + v as u64 * 8, 16);
        probe.int_ops(2);
    }

    /// Streams the adjacency slice starting at CSR position `pos`, of
    /// `len` targets.
    pub fn read_adjacency<P: Probe + ?Sized>(&mut self, probe: &mut P, pos: u64, len: u64) {
        let base = self.targets_base + pos * 4;
        let bytes = len * 4;
        let mut off = 0;
        while off < bytes {
            probe.load((base + off) & !63, 64);
            probe.int_ops(16); // process up to 16 targets per line
            off += 64;
        }
        if bytes == 0 {
            probe.int_ops(1);
        }
    }

    /// A data-dependent access to the value slot of vertex `v`.
    pub fn access_value<P: Probe + ?Sized>(&mut self, probe: &mut P, v: u32, write: bool) {
        let addr = self.values_base + v as u64 * 64;
        if write {
            probe.store(addr, 8);
        } else {
            probe.load(addr, 8);
        }
        probe.int_ops(3);
        probe.branch(v.is_multiple_of(2));
    }

    /// Appending vertex `v` to the next frontier.
    pub fn push_frontier<P: Probe + ?Sized>(&mut self, probe: &mut P, slot: u64) {
        probe.store(self.frontier_base + (slot * 4), 4);
        probe.int_ops(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::CountingProbe;

    fn graph() -> CsrGraph {
        CsrGraph::from_edges(8, &[(0, 1), (0, 2), (1, 3), (3, 0)])
    }

    #[test]
    fn thin_stack() {
        let m = GraphTraceModel::new(&graph());
        // MPI/C-style runtime: an order of magnitude smaller than the
        // Hadoop framework model.
        assert!(m.code_footprint() < 64 * 1024);
    }

    #[test]
    fn adjacency_stream_touches_lines() {
        let mut m = GraphTraceModel::new(&graph());
        let mut p = CountingProbe::default();
        m.read_adjacency(&mut p, 0, 32);
        assert_eq!(p.mix().loads, 2); // 128 bytes = 2 lines
    }

    #[test]
    fn value_scatter_reads_and_writes() {
        let mut m = GraphTraceModel::new(&graph());
        let mut p = CountingProbe::default();
        m.access_value(&mut p, 3, false);
        m.access_value(&mut p, 5, true);
        assert_eq!(p.mix().loads, 1);
        assert_eq!(p.mix().stores, 1);
    }
}
