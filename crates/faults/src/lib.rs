//! Deterministic fault injection for BigDataBench-RS.
//!
//! The paper's workloads inherit their real-world character from
//! fault-tolerant substrates: Hadoop re-executes failed and straggling
//! map tasks, and HBase replays its write-ahead log after a crash. To
//! exercise the matching recovery paths in our from-scratch engines,
//! this crate provides a seeded, deterministic [`FaultPlan`] that
//! injects failures at *named sites* — strings like
//! `"mapreduce.spill.write"` or `"kvstore.wal.append"` that the engines
//! consult at their crash points.
//!
//! Five fault kinds are supported ([`FaultKind`]):
//!
//! * **I/O errors** — a site returns an injected [`std::io::Error`];
//! * **torn writes** — an [`std::io::Write`] wrapper ([`FaultyWrite`])
//!   persists only a prefix of the buffer, then fails *sticky* (every
//!   later write also fails), modeling a process crash mid-write;
//! * **panics** — the site panics, modeling a task crash;
//! * **stragglers** — the site reports an artificial delay, modeling
//!   the slow tasks Hadoop's speculative execution exists for;
//! * **node kills** — a whole simulated node dies; the cluster layer
//!   (`bdb-cluster`) takes the node offline and later fails it back in.
//!
//! A plan decides deterministically: each site keeps an occurrence
//! counter, and a rule fires on an exact occurrence ([`Trigger::Nth`]),
//! pseudo-randomly from a hash of `(seed, site, occurrence)`
//! ([`Trigger::Probability`]), or once the plan's virtual clock passes a
//! deadline ([`Trigger::AtVirtualTime`], advanced by the harness via
//! [`FaultPlan::set_virtual_time`]) — never from global RNG state, so
//! two runs with the same plan and the same per-site call sequence
//! inject identically.
//!
//! Every injection is counted in an optional
//! [`bdb_telemetry::MetricsRegistry`] under `fault.injected.<site>`,
//! and engines report successful recoveries under
//! `fault.recovered.<site>` via [`FaultPlan::note_recovered`].
//!
//! # Example
//!
//! ```
//! use bdb_faults::{FaultPlan, FaultKind};
//!
//! let plan = FaultPlan::builder(42)
//!     .io_error_nth("demo.write", 1) // second call fails
//!     .build();
//! assert!(plan.fail_io("demo.write").is_ok());
//! assert!(plan.fail_io("demo.write").is_err());
//! assert!(plan.fail_io("demo.write").is_ok());
//! assert_eq!(plan.injected(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bdb_telemetry::MetricsRegistry;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What happens when a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The site fails with an injected [`std::io::Error`].
    IoError,
    /// A write persists only a prefix of its buffer, then fails; the
    /// wrapper stays broken afterwards (crash semantics).
    TornWrite,
    /// The site panics.
    Panic,
    /// The site is delayed by the given duration (an artificial
    /// straggler).
    Straggle(Duration),
    /// A whole simulated node dies (the cluster layer interprets this
    /// by taking the node offline; a single `Store` treats it as an
    /// I/O error).
    NodeKill,
}

/// When a rule fires, relative to the per-site occurrence counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on exactly the `n`-th occurrence of the site (0-based).
    Nth(u64),
    /// Fire whenever `hash(seed, site, occurrence)` falls below this
    /// probability (deterministic given the plan's seed).
    Probability(f64),
    /// Fire on the first occurrence of the site at or after the given
    /// virtual time (see [`FaultPlan::set_virtual_time`]); at most once
    /// per rule.
    AtVirtualTime(Duration),
}

#[derive(Debug, Clone)]
struct Rule {
    site: &'static str,
    trigger: Trigger,
    kind: FaultKind,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    rules: Vec<Rule>,
    /// Per-site occurrence counters; sites are engine-provided static
    /// strings, so the map stays tiny and lock contention negligible
    /// (one lock per *injection check*, never on byte-level I/O).
    occurrences: Mutex<HashMap<&'static str, u64>>,
    injected: AtomicU64,
    recovered: AtomicU64,
    /// Per-site injection/recovery counts (sorted map so reports that
    /// render them are byte-deterministic).
    injected_sites: Mutex<BTreeMap<&'static str, u64>>,
    recovered_sites: Mutex<BTreeMap<&'static str, u64>>,
    /// The plan's virtual clock, in nanoseconds; advanced by the
    /// driving harness, consulted by [`Trigger::AtVirtualTime`] rules.
    virtual_now_ns: AtomicU64,
    /// One flag per rule: `AtVirtualTime` rules fire at most once.
    fired: Vec<AtomicBool>,
    metrics: Option<MetricsRegistry>,
}

/// A seeded, deterministic fault plan shared by every engine in a run.
///
/// Cloning is cheap (an `Arc`); the disabled plan
/// ([`FaultPlan::disabled`]) costs one branch per site check.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

/// Builder for [`FaultPlan`]. Obtain via [`FaultPlan::builder`].
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<Rule>,
    metrics: Option<MetricsRegistry>,
}

impl FaultPlanBuilder {
    /// Adds an arbitrary rule.
    pub fn rule(mut self, site: &'static str, trigger: Trigger, kind: FaultKind) -> Self {
        self.rules.push(Rule { site, trigger, kind });
        self
    }

    /// The `n`-th occurrence of `site` fails with an I/O error.
    pub fn io_error_nth(self, site: &'static str, n: u64) -> Self {
        self.rule(site, Trigger::Nth(n), FaultKind::IoError)
    }

    /// The `n`-th occurrence of `site` suffers a torn write.
    pub fn torn_write_nth(self, site: &'static str, n: u64) -> Self {
        self.rule(site, Trigger::Nth(n), FaultKind::TornWrite)
    }

    /// The `n`-th occurrence of `site` panics.
    pub fn panic_nth(self, site: &'static str, n: u64) -> Self {
        self.rule(site, Trigger::Nth(n), FaultKind::Panic)
    }

    /// The `n`-th occurrence of `site` straggles for `delay`.
    pub fn straggle_nth(self, site: &'static str, n: u64, delay: Duration) -> Self {
        self.rule(site, Trigger::Nth(n), FaultKind::Straggle(delay))
    }

    /// Every occurrence of `site` fails with probability `p`
    /// (deterministic given the seed).
    pub fn io_error_p(self, site: &'static str, p: f64) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::IoError)
    }

    /// Every occurrence of `site` panics with probability `p`.
    pub fn panic_p(self, site: &'static str, p: f64) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::Panic)
    }

    /// Every occurrence of `site` suffers a torn write with
    /// probability `p`.
    pub fn torn_write_p(self, site: &'static str, p: f64) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::TornWrite)
    }

    /// Every occurrence of `site` straggles for `delay` with
    /// probability `p`.
    pub fn straggle_p(self, site: &'static str, p: f64, delay: Duration) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::Straggle(delay))
    }

    /// The first occurrence of `site` at or after virtual time `at`
    /// kills the node (fires at most once).
    pub fn node_kill_at(self, site: &'static str, at: Duration) -> Self {
        self.rule(site, Trigger::AtVirtualTime(at), FaultKind::NodeKill)
    }

    /// Attaches a metrics registry; injections and recoveries are
    /// counted under `fault.injected.<site>` / `fault.recovered.<site>`.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        let fired = self.rules.iter().map(|_| AtomicBool::new(false)).collect();
        FaultPlan {
            inner: Some(Arc::new(Inner {
                seed: self.seed,
                rules: self.rules,
                occurrences: Mutex::new(HashMap::new()),
                injected: AtomicU64::new(0),
                recovered: AtomicU64::new(0),
                injected_sites: Mutex::new(BTreeMap::new()),
                recovered_sites: Mutex::new(BTreeMap::new()),
                virtual_now_ns: AtomicU64::new(0),
                fired,
                metrics: self.metrics,
            })),
        }
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the engine default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts building a seeded plan.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder { seed, rules: Vec::new(), metrics: None }
    }

    /// Whether any rules are armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| !i.rules.is_empty())
    }

    /// Total faults injected so far across all sites.
    pub fn injected(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.injected.load(Ordering::Relaxed))
    }

    /// Total recoveries reported so far across all sites.
    pub fn recovered(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.recovered.load(Ordering::Relaxed))
    }

    /// Per-site injection counts, sorted by site name.
    pub fn injected_by_site(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            let sites = i.injected_sites.lock().expect("fault plan lock");
            sites.iter().map(|(s, n)| ((*s).to_string(), *n)).collect()
        })
    }

    /// Per-site recovery counts, sorted by site name.
    pub fn recovered_by_site(&self) -> Vec<(String, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            let sites = i.recovered_sites.lock().expect("fault plan lock");
            sites.iter().map(|(s, n)| ((*s).to_string(), *n)).collect()
        })
    }

    /// Advances the plan's virtual clock. [`Trigger::AtVirtualTime`]
    /// rules fire on the first site check at or after their deadline.
    /// The clock is monotonic: attempts to move it backwards are
    /// ignored.
    pub fn set_virtual_time(&self, now: Duration) {
        if let Some(inner) = self.inner.as_ref() {
            let ns = u64::try_from(now.as_nanos()).unwrap_or(u64::MAX);
            inner.virtual_now_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// The plan's current virtual time.
    pub fn virtual_time(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |i| {
            Duration::from_nanos(i.virtual_now_ns.load(Ordering::Relaxed))
        })
    }

    /// Consults the plan at `site`: advances the site's occurrence
    /// counter and returns the fault to inject, if any. Engines usually
    /// call the typed helpers ([`FaultPlan::fail_io`],
    /// [`FaultPlan::maybe_panic`], [`FaultPlan::straggle`]) instead.
    pub fn check(&self, site: &'static str) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let n = {
            let mut occ = inner.occurrences.lock().expect("fault plan lock");
            let slot = occ.entry(site).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        for (idx, rule) in inner.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Nth(want) => n == want,
                Trigger::Probability(p) => unit_hash(inner.seed, site, n) < p,
                Trigger::AtVirtualTime(at) => {
                    let now = inner.virtual_now_ns.load(Ordering::Relaxed);
                    let due = now >= u64::try_from(at.as_nanos()).unwrap_or(u64::MAX);
                    // Fire at most once: claim the flag atomically.
                    due && !inner.fired[idx].swap(true, Ordering::Relaxed)
                }
            };
            if fires {
                inner.injected.fetch_add(1, Ordering::Relaxed);
                *inner.injected_sites.lock().expect("fault plan lock").entry(site).or_insert(0) +=
                    1;
                if let Some(m) = &inner.metrics {
                    m.counter(&format!("fault.injected.{site}")).inc();
                }
                return Some(rule.kind.clone());
            }
        }
        None
    }

    /// Site check for plain I/O crash points: returns the injected
    /// error when an [`FaultKind::IoError`] or [`FaultKind::TornWrite`]
    /// rule fires (a torn write degenerates to an error when there is
    /// no byte stream to tear).
    ///
    /// # Errors
    ///
    /// Returns the injected error when a rule fires.
    pub fn fail_io(&self, site: &'static str) -> std::io::Result<()> {
        match self.check(site) {
            Some(FaultKind::IoError | FaultKind::TornWrite | FaultKind::NodeKill) => {
                Err(injected_error(site))
            }
            _ => Ok(()),
        }
    }

    /// Site check for task bodies: panics when a [`FaultKind::Panic`]
    /// rule fires.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when a panic rule fires at this site.
    pub fn maybe_panic(&self, site: &'static str) {
        if let Some(FaultKind::Panic) = self.check(site) {
            panic!("injected fault: panic at {site}");
        }
    }

    /// Site check for stragglers: the delay to apply, if a
    /// [`FaultKind::Straggle`] rule fires.
    pub fn straggle(&self, site: &'static str) -> Option<Duration> {
        match self.check(site) {
            Some(FaultKind::Straggle(d)) => Some(d),
            _ => None,
        }
    }

    /// Records that an engine recovered from an injected fault (retry
    /// succeeded, WAL replayed, ...). Counted under
    /// `fault.recovered.<site>`.
    pub fn note_recovered(&self, site: &'static str) {
        let Some(inner) = self.inner.as_ref() else { return };
        inner.recovered.fetch_add(1, Ordering::Relaxed);
        *inner.recovered_sites.lock().expect("fault plan lock").entry(site).or_insert(0) += 1;
        if let Some(m) = &inner.metrics {
            m.counter(&format!("fault.recovered.{site}")).inc();
        }
    }

    /// Site check for node-lifecycle points: whether a
    /// [`FaultKind::NodeKill`] rule fires at this occurrence.
    pub fn node_killed(&self, site: &'static str) -> bool {
        matches!(self.check(site), Some(FaultKind::NodeKill))
    }

    /// Wraps a writer so that each `write` call is one occurrence of
    /// `site`, subject to injected I/O errors and torn writes.
    pub fn wrap_write<W: Write>(&self, site: &'static str, inner: W) -> FaultyWrite<W> {
        FaultyWrite { inner, plan: self.clone(), site, broken: false }
    }

    /// Wraps a reader so that each `read` call is one occurrence of
    /// `site`, subject to injected I/O errors.
    pub fn wrap_read<R: Read>(&self, site: &'static str, inner: R) -> FaultyRead<R> {
        FaultyRead { inner, plan: self.clone(), site }
    }
}

/// The error every injected I/O fault carries; detectable by message
/// prefix `"injected fault"`.
fn injected_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: I/O error at {site}"))
}

/// Whether an I/O error was produced by this crate (useful in tests and
/// smoke checks to distinguish injected failures from real ones).
pub fn is_injected(e: &std::io::Error) -> bool {
    e.to_string().starts_with("injected fault")
}

/// Deterministic hash of `(seed, site, occurrence)` mapped to `[0, 1)`.
fn unit_hash(seed: u64, site: &str, n: u64) -> f64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &b in site.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= n;
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// An [`std::io::Write`] wrapper that injects faults from a plan.
///
/// Each `write` call is one occurrence of the wrapper's site. An
/// injected `IoError` fails the call without writing; an injected
/// `TornWrite` persists only the first half of the buffer to the inner
/// writer, then fails. After either, the wrapper is *broken*: all later
/// writes fail too, exactly as if the owning process had crashed — a
/// `BufWriter` flushing on drop cannot quietly complete a torn record.
#[derive(Debug)]
pub struct FaultyWrite<W: Write> {
    inner: W,
    plan: FaultPlan,
    site: &'static str,
    broken: bool,
}

impl<W: Write> FaultyWrite<W> {
    /// Whether a fault has fired on this wrapper (crashed state).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.broken {
            return Err(injected_error(self.site));
        }
        match self.plan.check(self.site) {
            Some(FaultKind::IoError | FaultKind::NodeKill) => {
                self.broken = true;
                Err(injected_error(self.site))
            }
            Some(FaultKind::TornWrite) => {
                self.broken = true;
                let keep = buf.len() / 2;
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.flush();
                Err(injected_error(self.site))
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.broken {
            return Err(injected_error(self.site));
        }
        self.inner.flush()
    }
}

/// An [`std::io::Read`] wrapper that injects I/O errors from a plan.
/// Each `read` call is one occurrence of the wrapper's site.
#[derive(Debug)]
pub struct FaultyRead<R: Read> {
    inner: R,
    plan: FaultPlan,
    site: &'static str,
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(FaultKind::IoError | FaultKind::TornWrite) = self.plan.check(self.site) {
            return Err(injected_error(self.site));
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for _ in 0..100 {
            assert!(plan.check("any.site").is_none());
            assert!(plan.fail_io("any.site").is_ok());
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let plan = FaultPlan::builder(1).io_error_nth("s", 2).build();
        let hits: Vec<bool> = (0..6).map(|_| plan.fail_io("s").is_err()).collect();
        assert_eq!(hits, [false, false, true, false, false, false]);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::builder(1).io_error_nth("a", 0).build();
        assert!(plan.fail_io("b").is_ok());
        assert!(plan.fail_io("a").is_err(), "b's calls must not advance a's counter");
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let count = |seed: u64| {
            let plan = FaultPlan::builder(seed).io_error_p("p", 0.25).build();
            (0..1000).filter(|_| plan.fail_io("p").is_err()).count()
        };
        let a = count(7);
        assert_eq!(a, count(7), "same seed, same injections");
        assert!((150..350).contains(&a), "~25% of 1000, got {a}");
        assert_ne!(a, count(8), "different seed, different pattern");
    }

    #[test]
    fn panic_rule_panics() {
        let plan = FaultPlan::builder(3).panic_nth("boom", 0).build();
        let r = std::panic::catch_unwind(|| plan.maybe_panic("boom"));
        assert!(r.is_err());
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn straggle_reports_delay_once() {
        let d = Duration::from_millis(50);
        let plan = FaultPlan::builder(3).straggle_nth("slow", 0, d).build();
        assert_eq!(plan.straggle("slow"), Some(d));
        assert_eq!(plan.straggle("slow"), None);
    }

    #[test]
    fn torn_write_persists_prefix_then_breaks() {
        let plan = FaultPlan::builder(1).torn_write_nth("w", 1).build();
        let mut sink = Vec::new();
        let mut w = plan.wrap_write("w", &mut sink);
        w.write_all(b"first").unwrap();
        let err = w.write_all(b"0123456789").unwrap_err();
        assert!(is_injected(&err));
        assert!(w.is_broken());
        assert!(w.write_all(b"later").is_err(), "sticky after the crash point");
        assert!(w.flush().is_err());
        drop(w);
        assert_eq!(sink, b"first01234", "only the prefix of the torn write landed");
    }

    #[test]
    fn faulty_read_injects() {
        let plan = FaultPlan::builder(1).io_error_nth("r", 1).build();
        let data = b"abcdef".to_vec();
        let mut r = plan.wrap_read("r", data.as_slice());
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        assert!(r.read_exact(&mut buf).is_err());
    }

    #[test]
    fn metrics_count_injections_and_recoveries() {
        let metrics = MetricsRegistry::new();
        let plan = FaultPlan::builder(1).io_error_nth("m.site", 0).metrics(metrics.clone()).build();
        assert!(plan.fail_io("m.site").is_err());
        plan.note_recovered("m.site");
        assert_eq!(metrics.counter("fault.injected.m.site").get(), 1);
        assert_eq!(metrics.counter("fault.recovered.m.site").get(), 1);
        assert_eq!(plan.recovered(), 1);
    }

    #[test]
    fn torn_write_p_is_deterministic_and_tears() {
        let run = |seed: u64| {
            let plan = FaultPlan::builder(seed).torn_write_p("tw", 0.2).build();
            let mut sink = Vec::new();
            let mut w = plan.wrap_write("tw", &mut sink);
            let mut wrote = 0usize;
            for _ in 0..50 {
                if w.write_all(b"0123456789").is_err() {
                    break;
                }
                wrote += 1;
            }
            drop(w);
            (wrote, sink)
        };
        let (wrote_a, sink_a) = run(9);
        let (wrote_b, sink_b) = run(9);
        assert_eq!(wrote_a, wrote_b, "same seed, same tear point");
        assert_eq!(sink_a, sink_b);
        assert!(wrote_a < 50, "p=0.2 over 50 writes virtually always tears");
        assert_eq!(sink_a.len(), wrote_a * 10 + 5, "half of the torn buffer landed");
    }

    #[test]
    fn straggle_p_reports_delay_deterministically() {
        let d = Duration::from_millis(7);
        let hits = |seed: u64| {
            let plan = FaultPlan::builder(seed).straggle_p("sl", 0.3, d).build();
            (0..200).filter(|_| plan.straggle("sl") == Some(d)).count()
        };
        let a = hits(4);
        assert_eq!(a, hits(4), "same seed, same straggler pattern");
        assert!((20..120).contains(&a), "~30% of 200, got {a}");
    }

    #[test]
    fn node_kill_fires_once_at_virtual_time() {
        let plan = FaultPlan::builder(5).node_kill_at("nk", Duration::from_millis(10)).build();
        assert!(!plan.node_killed("nk"), "before the deadline nothing fires");
        plan.set_virtual_time(Duration::from_millis(9));
        assert!(!plan.node_killed("nk"));
        plan.set_virtual_time(Duration::from_millis(10));
        assert!(plan.node_killed("nk"), "first check at/after the deadline fires");
        assert!(!plan.node_killed("nk"), "an AtVirtualTime rule fires at most once");
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn virtual_clock_is_monotonic() {
        let plan = FaultPlan::builder(5).build();
        plan.set_virtual_time(Duration::from_secs(3));
        plan.set_virtual_time(Duration::from_secs(1));
        assert_eq!(plan.virtual_time(), Duration::from_secs(3));
    }

    #[test]
    fn per_site_counts_are_sorted_and_exact() {
        let plan =
            FaultPlan::builder(1).io_error_nth("z.site", 0).io_error_nth("a.site", 0).build();
        assert!(plan.fail_io("z.site").is_err());
        assert!(plan.fail_io("a.site").is_err());
        plan.note_recovered("z.site");
        assert_eq!(
            plan.injected_by_site(),
            vec![("a.site".to_string(), 1), ("z.site".to_string(), 1)]
        );
        assert_eq!(plan.recovered_by_site(), vec![("z.site".to_string(), 1)]);
    }

    #[test]
    fn plan_is_shareable_across_threads() {
        let plan = FaultPlan::builder(1).io_error_p("t", 0.5).build();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = plan.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let _ = p.fail_io("t");
                    }
                });
            }
        });
        assert!(plan.injected() > 100, "roughly half of 400 checks fire");
    }
}
