//! Property-based invariants of the ML kernels.

use bdb_mlkit::{ItemCf, KMeans, NaiveBayes};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 4..60)
}

proptest! {
    /// The defining K-means invariant: every point is assigned to its
    /// nearest final centroid.
    #[test]
    fn kmeans_assignments_are_nearest(points in points_strategy(), k in 1usize..5, seed in any::<u64>()) {
        let model = KMeans::new(k).fit(&points, seed);
        let d2 = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        for (p, &assigned) in points.iter().zip(&model.assignments) {
            let own = d2(p, &model.centroids[assigned]);
            for c in &model.centroids {
                prop_assert!(own <= d2(p, c) + 1e-9);
            }
        }
    }

    /// Inertia equals the sum of squared distances to assigned centroids.
    #[test]
    fn kmeans_inertia_consistent(points in points_strategy(), seed in any::<u64>()) {
        let model = KMeans::new(2).fit(&points, seed);
        let d2 = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let recomputed: f64 = points
            .iter()
            .zip(&model.assignments)
            .map(|(p, &c)| d2(p, &model.centroids[c]))
            .sum();
        prop_assert!((recomputed - model.inertia).abs() < 1e-6 * (1.0 + recomputed));
    }

    /// K-means is deterministic per seed.
    #[test]
    fn kmeans_deterministic(points in points_strategy(), seed in any::<u64>()) {
        let a = KMeans::new(3).fit(&points, seed);
        let b = KMeans::new(3).fit(&points, seed);
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.iterations, b.iterations);
    }

    /// Naive Bayes learns perfectly separable classes exactly. The
    /// classes are kept balanced so the likelihood (not a prior tie)
    /// decides; with imbalance, an exact score tie is possible and the
    /// argmax is unspecified.
    #[test]
    fn bayes_separable_classes(
        n in 1usize..20,
        queries in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut docs = Vec::new();
        for _ in 0..n {
            docs.push((1usize, "good great".to_owned()));
            docs.push((0usize, "bad awful".to_owned()));
        }
        let model = NaiveBayes::train(&docs, 2);
        for q in queries {
            let text = if q { "good great" } else { "bad awful" };
            prop_assert_eq!(model.predict(text), q as usize);
        }
    }

    /// CF predictions always land within the rating scale's convex hull
    /// (or the global mean for cold starts).
    #[test]
    fn cf_predictions_bounded(
        ratings in proptest::collection::vec((0u64..20, 0u64..20, 1u32..=5), 1..100),
        user in 0u64..25,
        item in 0u64..25,
    ) {
        let ratings: Vec<(u64, u64, f32)> =
            ratings.into_iter().map(|(u, i, r)| (u, i, r as f32)).collect();
        let model = ItemCf::train(&ratings, 10);
        let p = model.predict(user, item);
        prop_assert!((1.0..=5.0).contains(&p), "prediction {p}");
    }

    /// Recommendations never include items the user already rated.
    #[test]
    fn cf_recommendations_exclude_rated(
        ratings in proptest::collection::vec((0u64..10, 0u64..15, 1u32..=5), 2..80),
        user in 0u64..10,
    ) {
        let ratings: Vec<(u64, u64, f32)> =
            ratings.into_iter().map(|(u, i, r)| (u, i, r as f32)).collect();
        let model = ItemCf::train(&ratings, 5);
        let rated: std::collections::HashSet<u64> = ratings
            .iter()
            .filter(|(u, _, _)| *u == user)
            .map(|(_, i, _)| *i)
            .collect();
        for (item, _) in model.recommend(user, 10) {
            prop_assert!(!rated.contains(&item));
        }
    }
}
