//! Item-based collaborative filtering with cosine similarity.
//!
//! The paper's CF workload is a recommendation algorithm over the Amazon
//! movie-review ratings. This is the classic item-item formulation
//! (Sarwar et al.): represent each item as its vector of user ratings,
//! compute cosine similarities between co-rated items, and predict a
//! user's rating of an unseen item as the similarity-weighted average of
//! their ratings of similar items.

use bdb_archsim::layout::{splitmix64, HEAP_BASE};
use bdb_archsim::{NullProbe, Probe};
use std::collections::HashMap;

/// A trained item-item CF model.
#[derive(Debug, Clone)]
pub struct ItemCf {
    /// user -> (item, rating) list.
    user_ratings: HashMap<u64, Vec<(u64, f32)>>,
    /// item -> (other item, similarity) list, sorted descending.
    similarities: HashMap<u64, Vec<(u64, f32)>>,
    /// Global mean rating (cold-start fallback).
    global_mean: f32,
}

impl ItemCf {
    /// Trains on `(user, item, rating)` triples, keeping the top
    /// `neighbors` most similar items per item.
    ///
    /// # Panics
    ///
    /// Panics if `ratings` is empty or `neighbors` is zero.
    pub fn train(ratings: &[(u64, u64, f32)], neighbors: usize) -> Self {
        Self::train_traced(ratings, neighbors, &mut NullProbe)
    }

    /// Instrumented [`ItemCf::train`]: the co-rating accumulation is a
    /// scatter into an item×item sparse map (hash traffic), the cosine
    /// normalization is FP.
    ///
    /// # Panics
    ///
    /// Panics if `ratings` is empty or `neighbors` is zero.
    pub fn train_traced<P: Probe + ?Sized>(
        ratings: &[(u64, u64, f32)],
        neighbors: usize,
        probe: &mut P,
    ) -> Self {
        assert!(!ratings.is_empty(), "need ratings");
        assert!(neighbors > 0, "need at least one neighbor");
        let pairs_base = HEAP_BASE;
        let span = ((ratings.len() as u64) * 64).clamp(1 << 16, 8 << 20);
        let mut user_ratings: HashMap<u64, Vec<(u64, f32)>> = HashMap::new();
        let mut norms: HashMap<u64, f64> = HashMap::new();
        for &(u, i, r) in ratings {
            user_ratings.entry(u).or_default().push((i, r));
            *norms.entry(i).or_insert(0.0) += (r as f64) * (r as f64);
            probe.fp_ops(2);
            probe.load(pairs_base + splitmix64(u) % span, 16);
        }
        let global_mean =
            ratings.iter().map(|&(_, _, r)| r as f64).sum::<f64>() as f32 / ratings.len() as f32;

        // Co-rating dot products: for each user, every pair of their
        // rated items contributes r_a * r_b.
        let mut dots: HashMap<(u64, u64), f64> = HashMap::new();
        for items in user_ratings.values() {
            for (a_idx, &(ia, ra)) in items.iter().enumerate() {
                for &(ib, rb) in &items[a_idx + 1..] {
                    let key = if ia < ib { (ia, ib) } else { (ib, ia) };
                    *dots.entry(key).or_insert(0.0) += (ra as f64) * (rb as f64);
                    probe.fp_ops(2);
                    probe.store(
                        pairs_base + (16 << 20) + splitmix64(key.0 ^ (key.1 << 20)) % span,
                        16,
                    );
                    probe.int_ops(6);
                }
            }
        }
        // Normalize to cosine and keep top-k per item.
        let mut similarities: HashMap<u64, Vec<(u64, f32)>> = HashMap::new();
        for (&(a, b), &dot) in &dots {
            let sim = dot / (norms[&a].sqrt() * norms[&b].sqrt());
            probe.fp_ops(4);
            let sim = sim as f32;
            similarities.entry(a).or_default().push((b, sim));
            similarities.entry(b).or_default().push((a, sim));
        }
        for list in similarities.values_mut() {
            list.sort_by(|x, y| y.1.total_cmp(&x.1));
            list.truncate(neighbors);
        }
        Self { user_ratings, similarities, global_mean }
    }

    /// Number of items with at least one similarity edge.
    pub fn item_count(&self) -> usize {
        self.similarities.len()
    }

    /// The global mean rating.
    pub fn global_mean(&self) -> f32 {
        self.global_mean
    }

    /// Predicts `user`'s rating of `item`.
    pub fn predict(&self, user: u64, item: u64) -> f32 {
        self.predict_traced(user, item, &mut NullProbe)
    }

    /// Instrumented [`ItemCf::predict`]: walks the user's rated items
    /// against the target item's neighbor list.
    pub fn predict_traced<P: Probe + ?Sized>(&self, user: u64, item: u64, probe: &mut P) -> f32 {
        let Some(rated) = self.user_ratings.get(&user) else {
            return self.global_mean;
        };
        let Some(neighbors) = self.similarities.get(&item) else {
            return self.global_mean;
        };
        let sims: HashMap<u64, f32> = neighbors.iter().copied().collect();
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        let span = ((self.user_ratings.len() as u64 + 1) * 512).clamp(1 << 16, 8 << 20);
        for &(rated_item, rating) in rated {
            probe.load(HEAP_BASE + (64 << 20) + splitmix64(rated_item) % span, 8);
            probe.int_ops(4);
            if let Some(&sim) = sims.get(&rated_item) {
                if sim > 0.0 {
                    num += sim as f64 * rating as f64;
                    den += sim as f64;
                    probe.fp_ops(3);
                }
            }
        }
        if den == 0.0 {
            self.global_mean
        } else {
            (num / den) as f32
        }
    }

    /// Top-`n` recommendations for `user` among items they have not
    /// rated, ranked by predicted rating.
    pub fn recommend(&self, user: u64, n: usize) -> Vec<(u64, f32)> {
        let rated: std::collections::HashSet<u64> = self
            .user_ratings
            .get(&user)
            .map(|v| v.iter().map(|&(i, _)| i).collect())
            .unwrap_or_default();
        let mut candidates: Vec<(u64, f32)> = self
            .similarities
            .keys()
            .filter(|i| !rated.contains(i))
            .map(|&i| (i, self.predict(user, i)))
            .collect();
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(n);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Users 1-2 love items 10/11 (and hate 20); users 3-4 the reverse.
    fn ratings() -> Vec<(u64, u64, f32)> {
        vec![
            (1, 10, 5.0),
            (1, 11, 5.0),
            (1, 20, 1.0),
            (2, 10, 5.0),
            (2, 11, 4.0),
            (3, 20, 5.0),
            (3, 21, 5.0),
            (3, 10, 1.0),
            (4, 20, 4.0),
            (4, 21, 5.0),
        ]
    }

    #[test]
    fn predicts_within_scale() {
        let model = ItemCf::train(&ratings(), 10);
        let p = model.predict(2, 20);
        assert!((1.0..=5.0).contains(&p));
    }

    #[test]
    fn similar_item_prediction_tracks_taste() {
        let model = ItemCf::train(&ratings(), 10);
        // User 2 loves 10 & 11; item 11's closest neighbour is 10.
        let p_like = model.predict(2, 11);
        assert!(p_like > 3.5, "predicted {p_like}");
        // User 4 (loves 20/21) should predict high for 21's neighbour 20.
        let p4 = model.predict(4, 20);
        assert!(p4 > 3.5);
    }

    #[test]
    fn cold_start_falls_back_to_global_mean() {
        let model = ItemCf::train(&ratings(), 10);
        assert_eq!(model.predict(999, 10), model.global_mean());
        assert_eq!(model.predict(1, 999), model.global_mean());
    }

    #[test]
    fn recommend_excludes_rated_items() {
        let model = ItemCf::train(&ratings(), 10);
        let recs = model.recommend(1, 5);
        let rec_items: Vec<u64> = recs.iter().map(|&(i, _)| i).collect();
        assert!(!rec_items.contains(&10));
        assert!(!rec_items.contains(&11));
        assert!(!rec_items.contains(&20));
        assert!(rec_items.contains(&21), "21 is the only unrated item");
    }

    #[test]
    fn neighbor_truncation_respected() {
        let model = ItemCf::train(&ratings(), 1);
        for list in model.similarities.values() {
            assert!(list.len() <= 1);
        }
    }

    #[test]
    fn traced_counts_work() {
        use bdb_archsim::CountingProbe;
        let mut probe = CountingProbe::default();
        let model = ItemCf::train_traced(&ratings(), 10, &mut probe);
        assert!(probe.mix().fp_ops > 0);
        assert!(probe.mix().stores > 0, "co-rating scatter recorded");
        let before = probe.mix().loads;
        model.predict_traced(1, 21, &mut probe);
        assert!(probe.mix().loads > before);
    }

    #[test]
    #[should_panic(expected = "need ratings")]
    fn empty_ratings_panic() {
        ItemCf::train(&[], 5);
    }
}
