//! Multinomial Naive Bayes for text classification.
//!
//! The paper's Naive Bayes workload classifies Amazon movie reviews by
//! sentiment. This is the standard multinomial formulation with Laplace
//! smoothing over a bag-of-words model.

use bdb_archsim::layout::{splitmix64, HEAP_BASE};
use bdb_archsim::{NullProbe, Probe};
use std::collections::HashMap;

/// A trained multinomial Naive Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    vocab: HashMap<String, usize>,
    class_log_prior: Vec<f64>,
    /// `feature_log_prob[class][word]`.
    feature_log_prob: Vec<Vec<f64>>,
    /// Smoothed log-probability for unseen words, per class.
    unseen_log_prob: Vec<f64>,
}

impl NaiveBayes {
    /// Trains on `(class, text)` pairs over `classes` classes with
    /// Laplace smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty, `classes` is zero, or any label is out
    /// of range.
    pub fn train(docs: &[(usize, String)], classes: usize) -> Self {
        Self::train_traced(docs, classes, &mut NullProbe)
    }

    /// Instrumented [`NaiveBayes::train`]: per-token hash lookups into
    /// the count tables plus log-space FP arithmetic at the end.
    ///
    /// # Panics
    ///
    /// Panics if `docs` is empty, `classes` is zero, or any label is out
    /// of range.
    pub fn train_traced<P: Probe + ?Sized>(
        docs: &[(usize, String)],
        classes: usize,
        probe: &mut P,
    ) -> Self {
        assert!(!docs.is_empty(), "need training documents");
        assert!(classes > 0, "need at least one class");
        let counts_base = HEAP_BASE;
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let mut class_docs = vec![0u64; classes];
        let mut word_counts: Vec<HashMap<usize, u64>> = vec![HashMap::new(); classes];
        let mut class_tokens = vec![0u64; classes];
        for (label, text) in docs {
            assert!(*label < classes, "label {label} out of range");
            class_docs[*label] += 1;
            for token in text.split_whitespace() {
                let next_id = vocab.len();
                let id = *vocab.entry(token.to_owned()).or_insert(next_id);
                // Count-table spans follow the (growing) vocabulary, so
                // locality reflects the real structure sizes.
                let span = ((vocab.len() as u64 + 1) * 48).clamp(1 << 16, 8 << 20);
                probe.load(counts_base + splitmix64(id as u64) % span, 16);
                probe.store(counts_base + (8 << 20) + (id as u64 * 8) % span, 8);
                probe.int_ops(12);
                probe.branch(id.is_multiple_of(4));
                *word_counts[*label].entry(id).or_insert(0) += 1;
                class_tokens[*label] += 1;
            }
        }
        let v = vocab.len() as f64;
        let total_docs: u64 = class_docs.iter().sum();
        let mut class_log_prior = Vec::with_capacity(classes);
        let mut feature_log_prob = Vec::with_capacity(classes);
        let mut unseen_log_prob = Vec::with_capacity(classes);
        for c in 0..classes {
            class_log_prior.push(((class_docs[c].max(1)) as f64 / total_docs as f64).ln());
            let denom = class_tokens[c] as f64 + v;
            let mut probs = vec![0.0f64; vocab.len()];
            for (&w, &n) in &word_counts[c] {
                probs[w] = ((n as f64 + 1.0) / denom).ln();
                probe.fp_ops(3);
            }
            for (w, p) in probs.iter_mut().enumerate() {
                if *p == 0.0 && !word_counts[c].contains_key(&w) {
                    *p = (1.0 / denom).ln();
                }
            }
            unseen_log_prob.push((1.0 / denom).ln());
            probe.fp_ops(vocab.len() as u64);
            feature_log_prob.push(probs);
        }
        Self { vocab, class_log_prior, feature_log_prob, unseen_log_prob }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_log_prior.len()
    }

    /// Predicts the most likely class for `text`.
    pub fn predict(&self, text: &str) -> usize {
        self.predict_traced(text, &mut NullProbe)
    }

    /// Instrumented [`NaiveBayes::predict`].
    pub fn predict_traced<P: Probe + ?Sized>(&self, text: &str, probe: &mut P) -> usize {
        let mut scores = self.class_log_prior.clone();
        let table_base = HEAP_BASE + (256 << 20);
        let span = ((self.vocab.len() as u64 + 1) * 48).clamp(1 << 16, 8 << 20);
        for token in text.split_whitespace() {
            let id = self.vocab.get(token).copied();
            probe.load(table_base + splitmix64(hash_str(token)) % span, 8);
            probe.int_ops(8);
            for (c, score) in scores.iter_mut().enumerate() {
                *score += match id {
                    Some(w) => self.feature_log_prob[c][w],
                    None => self.unseen_log_prob[c],
                };
                probe.fp_ops(1);
            }
        }
        scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c).unwrap_or(0)
    }

    /// Classification accuracy on labeled data.
    pub fn accuracy(&self, docs: &[(usize, String)]) -> f64 {
        if docs.is_empty() {
            return 0.0;
        }
        let correct = docs.iter().filter(|(l, t)| self.predict(t) == *l).count();
        correct as f64 / docs.len() as f64
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<(usize, String)> {
        vec![
            (1, "great movie loved it".into()),
            (1, "wonderful amazing film great".into()),
            (1, "loved the acting great story".into()),
            (0, "terrible boring waste of time".into()),
            (0, "awful film boring plot".into()),
            (0, "worst movie terrible acting".into()),
        ]
    }

    #[test]
    fn classifies_held_out_sentiment() {
        let model = NaiveBayes::train(&docs(), 2);
        assert_eq!(model.predict("great wonderful story"), 1);
        assert_eq!(model.predict("boring terrible waste"), 0);
    }

    #[test]
    fn training_accuracy_is_high() {
        let model = NaiveBayes::train(&docs(), 2);
        assert!(model.accuracy(&docs()) >= 0.99);
    }

    #[test]
    fn unseen_words_fall_back_to_prior() {
        let model = NaiveBayes::train(&docs(), 2);
        // Entirely unseen text: decision driven by priors (equal here),
        // must not panic and must return a valid class.
        let c = model.predict("xyzzy plugh");
        assert!(c < 2);
    }

    #[test]
    fn vocab_and_classes_reported() {
        let model = NaiveBayes::train(&docs(), 2);
        assert_eq!(model.classes(), 2);
        assert!(model.vocab_size() >= 15);
    }

    #[test]
    fn traced_counts_fp_work() {
        use bdb_archsim::CountingProbe;
        let mut probe = CountingProbe::default();
        let model = NaiveBayes::train_traced(&docs(), 2, &mut probe);
        let before = probe.mix().fp_ops;
        assert!(before > 0, "training does log arithmetic");
        model.predict_traced("great boring", &mut probe);
        assert!(probe.mix().fp_ops > before, "prediction adds FP");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        NaiveBayes::train(&[(5, "x".into())], 2);
    }

    #[test]
    #[should_panic(expected = "training documents")]
    fn empty_docs_panic() {
        NaiveBayes::train(&[], 2);
    }
}
