//! Machine-learning kernels for BigDataBench-RS.
//!
//! Three of the paper's offline-analytics workloads are classic ML
//! algorithms (Table 4): **K-means** (social-network domain, Hadoop
//! implementation), **Naive Bayes** (e-commerce sentiment classification
//! over Amazon movie reviews) and **Collaborative Filtering**
//! (e-commerce recommendation). All three are implemented here from
//! scratch with both native and probe-instrumented entry points.
//!
//! Note the paper's Figure 4: Naive Bayes has the *lowest*
//! integer-to-FP ratio (≈10) of the suite because classification is log
//! arithmetic; K-means is distance arithmetic; CF is dot products. The
//! instrumented kernels therefore emit genuine `fp_ops` so those
//! workloads sit exactly where the paper puts them on the
//! operation-intensity spectrum.
//!
//! # Example
//!
//! ```
//! use bdb_mlkit::kmeans::KMeans;
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![9.0, 9.0], vec![9.1, 9.0],
//! ];
//! let model = KMeans::new(2).fit(&points, 42);
//! assert_eq!(model.assignments[0], model.assignments[1]);
//! assert_ne!(model.assignments[0], model.assignments[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bayes;
pub mod cf;
pub mod kmeans;

pub use bayes::NaiveBayes;
pub use cf::ItemCf;
pub use kmeans::{KMeans, KMeansModel};
