//! Lloyd's K-means.

use bdb_archsim::layout::HEAP_BASE;
use bdb_archsim::{NullProbe, Probe};
use bdb_telemetry::{span, SpanRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means configuration and entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Stop when total centroid movement falls below this.
    pub tolerance: f64,
}

/// A fitted model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// Final centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Iterations actually run.
    pub iterations: u32,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl KMeans {
    /// K-means with `k` clusters and default limits.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k, max_iterations: 50, tolerance: 1e-6 }
    }

    /// Fits on `points` (all the same dimension), seeding centroid
    /// choice with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn fit(&self, points: &[Vec<f64>], seed: u64) -> KMeansModel {
        self.fit_traced(points, seed, &mut NullProbe)
    }

    /// [`KMeans::fit`] with per-iteration spans on `telemetry` (one
    /// `kmeans-iteration` span per Lloyd round, carrying the round's
    /// total centroid movement).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn fit_instrumented(
        &self,
        points: &[Vec<f64>],
        seed: u64,
        telemetry: &SpanRecorder,
    ) -> KMeansModel {
        self.fit_impl(points, seed, &mut NullProbe, telemetry)
    }

    /// Instrumented [`KMeans::fit`]: points stream sequentially, the
    /// centroid block stays resident — the access pattern whose
    /// cache behaviour shifts with data volume in the paper's Figure 2
    /// (K-means had the largest small-vs-large L3 MPKI gap).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions are inconsistent.
    pub fn fit_traced<P: Probe + ?Sized>(
        &self,
        points: &[Vec<f64>],
        seed: u64,
        probe: &mut P,
    ) -> KMeansModel {
        self.fit_impl(points, seed, probe, &SpanRecorder::disabled())
    }

    fn fit_impl<P: Probe + ?Sized>(
        &self,
        points: &[Vec<f64>],
        seed: u64,
        probe: &mut P,
        telemetry: &SpanRecorder,
    ) -> KMeansModel {
        assert!(!points.is_empty(), "need at least one point");
        let _run_span = span!(telemetry, "mlkit", "kmeans-fit", points = points.len());
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "inconsistent dimensions");
        let k = self.k.min(points.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // Synthetic layout: points then centroids.
        let points_base = HEAP_BASE;
        let point_bytes = (dim * 8) as u64;
        let centroids_base = points_base + points.len() as u64 * point_bytes + 4096;

        // k-means++-lite init: distinct random points.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        let mut chosen = std::collections::HashSet::new();
        while centroids.len() < k {
            let idx = rng.gen_range(0..points.len());
            if chosen.insert(idx) || chosen.len() >= points.len() {
                centroids.push(points[idx].clone());
            }
        }

        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        let mut inertia = 0.0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            if probe.is_active() {
                probe.phase(&format!("iter-{iterations}"));
            }
            let counters_before = probe.counters();
            let mut iter_span = span!(telemetry, "mlkit", "kmeans-iteration", iter = iterations);
            inertia = 0.0;
            // Assign.
            for (i, p) in points.iter().enumerate() {
                probe.load(points_base + i as u64 * point_bytes, point_bytes as u32);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    probe.load(centroids_base + (c * dim * 8) as u64, (dim * 8) as u32);
                    let d = sq_dist(p, centroid);
                    probe.fp_ops((3 * dim) as u64);
                    probe.branch(d < best_d);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignments[i] = best;
                inertia += best_d;
            }
            // Update.
            let mut sums = vec![vec![0.0f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, x) in sums[c].iter_mut().zip(p) {
                    *s += x;
                }
                probe.fp_ops(dim as u64);
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    continue; // keep empty centroid in place
                }
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += sq_dist(&new, &centroids[c]).sqrt();
                probe.fp_ops((2 * dim) as u64);
                probe.store(centroids_base + (c * dim * 8) as u64, (dim * 8) as u32);
                centroids[c] = new;
            }
            iter_span.arg("movement", movement);
            if let (Some(b), Some(a)) = (counters_before, probe.counters()) {
                for (key, value) in a.delta_since(&b).named_counters() {
                    iter_span.arg(key, value);
                }
            }
            if movement < self.tolerance {
                break;
            }
        }
        KMeansModel { centroids, assignments, iterations, inertia }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + i as f64 * 0.01, 1.0]);
            pts.push(vec![50.0 + i as f64 * 0.01, -1.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let model = KMeans::new(2).fit(&two_blobs(), 7);
        // Points alternate blob A / blob B; assignments must alternate too.
        let a = model.assignments[0];
        let b = model.assignments[1];
        assert_ne!(a, b);
        for (i, &c) in model.assignments.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b });
        }
        assert!(model.inertia < 1.0, "tight blobs: inertia {}", model.inertia);
    }

    #[test]
    fn centroids_near_blob_means() {
        let model = KMeans::new(2).fit(&two_blobs(), 3);
        let mut xs: Vec<f64> = model.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] - 0.095).abs() < 0.5);
        assert!((xs[1] - 50.095).abs() < 0.5);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![vec![0.0], vec![1.0]];
        let model = KMeans::new(10).fit(&pts, 1);
        assert!(model.centroids.len() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KMeans::new(3).fit(&two_blobs(), 11);
        let b = KMeans::new(3).fit(&two_blobs(), 11);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn traced_matches_native_and_counts_fp() {
        use bdb_archsim::CountingProbe;
        let mut probe = CountingProbe::default();
        let traced = KMeans::new(2).fit_traced(&two_blobs(), 7, &mut probe);
        let native = KMeans::new(2).fit(&two_blobs(), 7);
        assert_eq!(traced.assignments, native.assignments);
        assert!(probe.mix().fp_ops > 1000, "distance math is FP");
        assert!(probe.mix().loads > 0);
    }

    #[test]
    fn instrumented_emits_one_span_per_iteration() {
        let telemetry = SpanRecorder::enabled();
        let model = KMeans::new(2).fit_instrumented(&two_blobs(), 7, &telemetry);
        let native = KMeans::new(2).fit(&two_blobs(), 7);
        assert_eq!(model.assignments, native.assignments);
        let spans = telemetry.events().iter().filter(|e| e.name == "kmeans-iteration").count();
        assert_eq!(spans as u32, model.iterations);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        KMeans::new(2).fit(&[], 0);
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensions")]
    fn ragged_input_panics() {
        KMeans::new(1).fit(&[vec![1.0], vec![1.0, 2.0]], 0);
    }
}
