//! Property-based invariants of the cache/TLB/machine simulators.

use bdb_archsim::{Cache, CacheConfig, MachineConfig, MachineSim, Tlb, TlbConfig};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig::new("t", 4096, 4, 64))
}

proptest! {
    /// Misses never exceed accesses, and stats add up.
    #[test]
    fn misses_bounded_by_accesses(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = small_cache();
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert_eq!(s.hits() + s.misses, s.accesses);
    }

    /// Resident lines never exceed the configured capacity.
    #[test]
    fn capacity_is_respected(addrs in proptest::collection::vec(0u64..10_000_000, 1..2000)) {
        let mut c = small_cache();
        for a in &addrs {
            c.access(*a);
        }
        prop_assert!(c.resident_lines() <= 4096 / 64);
    }

    /// An address accessed twice in a row always hits the second time.
    #[test]
    fn immediate_rehit(addr in 0u64..u64::MAX / 2) {
        let mut c = small_cache();
        c.access(addr);
        prop_assert!(c.access(addr));
    }

    /// Replaying the same trace yields identical statistics.
    #[test]
    fn deterministic_replay(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let run = |addrs: &[u64]| {
            let mut c = small_cache();
            for a in addrs {
                c.access(*a);
            }
            c.stats()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    /// A working set no bigger than the cache has only cold misses.
    #[test]
    fn small_working_set_only_cold_misses(
        lines in proptest::collection::vec(0u64..64, 1..64),
        rounds in 1usize..6,
    ) {
        let mut c = small_cache();
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        for _ in 0..rounds {
            for &l in &lines {
                c.access(l * 64);
            }
        }
        prop_assert_eq!(c.stats().misses, distinct.len() as u64);
    }

    /// TLB: misses bounded, page-granular hits.
    #[test]
    fn tlb_invariants(pages in proptest::collection::vec(0u64..1000, 1..400)) {
        let mut t = Tlb::new(TlbConfig::new("t", 64, 4, 4096));
        for &p in &pages {
            t.access(p * 4096);
            // Same page again: must hit.
            assert!(t.access(p * 4096 + 123));
        }
        let s = t.stats();
        prop_assert_eq!(s.accesses, pages.len() as u64 * 2);
        prop_assert!(s.misses <= pages.len() as u64);
    }

    /// MachineSim: a random event stream keeps the report internally
    /// consistent (per-level monotonicity, cycles > 0 for nonempty runs).
    #[test]
    fn machine_report_consistent(
        ops in proptest::collection::vec((0u64..10_000_000, 1u32..128, any::<bool>()), 1..300),
    ) {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        for (addr, bytes, store) in &ops {
            m.data_access(*addr, *bytes, *store);
        }
        let r = m.report();
        prop_assert_eq!(r.mix.loads + r.mix.stores, ops.len() as u64);
        // The hierarchy filters: L2 sees at most L1D misses, L3 at most L2 misses.
        prop_assert!(r.l2.stats.accesses <= r.l1d.stats.misses + r.l1i.stats.misses);
        let l3 = r.l3.expect("E5645 has L3");
        prop_assert!(l3.stats.accesses <= r.l2.stats.misses);
        prop_assert!(r.cycles > 0);
        prop_assert!(r.dram_bytes.is_multiple_of(64), "DRAM traffic is line-granular");
    }

    /// reset_stats zeroes counters but preserves cache warmth.
    #[test]
    fn reset_preserves_warmth(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut m = MachineSim::new(MachineConfig::xeon_e5310());
        for a in &addrs {
            m.data_access(*a, 8, false);
        }
        m.reset_stats();
        let zero = m.report();
        prop_assert_eq!(zero.instructions(), 0);
        // Re-access the last address: it must be warm (L1 hit, no DRAM).
        m.data_access(*addrs.last().expect("nonempty"), 8, false);
        let r = m.report();
        prop_assert_eq!(r.l1d.stats.misses, 0);
    }
}
