//! Synthetic address-space layout: heap allocation for data structures
//! and code-region modeling for instruction fetch.
//!
//! Characterized kernels do not read real process memory; instead they
//! allocate *synthetic* regions from an [`AddressSpace`] and derive the
//! addresses they touch from genuine indices and hash values, so spatial
//! and temporal locality are real even though no bytes are stored.
//!
//! Instruction-side behaviour is modeled with [`CodeRegion`]s — address
//! ranges standing for compiled function bodies — grouped into a
//! [`SoftwareStack`]. Each stack layer has a small **hot** pool (the
//! functions on the per-record fast path, which stay cache-resident) and
//! a large **cold** pool (error paths, type dispatch, GC, logging —
//! touched every `cold_period` records). Deep stacks with large cold
//! footprints produce the high L1I-cache and ITLB miss rates the paper
//! measures for big-data workloads; shallow compute kernels stay
//! resident. The hot/cold ratio is the model's calibration knob.

use crate::probe::Probe;

/// Base virtual address of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base virtual address of the synthetic heap.
pub const HEAP_BASE: u64 = 0x1000_0000_0000;

/// Bytes of machine code per dynamic instruction (x86-64 averages ≈4).
pub const BYTES_PER_INSTRUCTION: u32 = 4;

/// Reserved, non-overlapping sub-spaces of the synthetic address space.
///
/// Substrate crates (the MapReduce engine, the LSM store, the query
/// engine, the servers) allocate their framework state from their own
/// region so their addresses never alias the workload's data when both
/// feed the same [`crate::MachineSim`].
pub mod regions {
    /// Workload data (the default for [`super::AddressSpace::new`]).
    pub const WORKLOAD_HEAP: u64 = super::HEAP_BASE;
    /// MapReduce engine buffers and framework code.
    pub const MAPREDUCE_HEAP: u64 = 0x2000_0000_0000;
    /// MapReduce framework code segment.
    pub const MAPREDUCE_CODE: u64 = 0x0100_0000;
    /// LSM key-value store state.
    pub const KVSTORE_HEAP: u64 = 0x3000_0000_0000;
    /// LSM store code segment.
    pub const KVSTORE_CODE: u64 = 0x0200_0000;
    /// Relational engine state.
    pub const SQL_HEAP: u64 = 0x4000_0000_0000;
    /// Relational engine code segment.
    pub const SQL_CODE: u64 = 0x0300_0000;
    /// Online-service server state.
    pub const SERVING_HEAP: u64 = 0x5000_0000_0000;
    /// Server code segment.
    pub const SERVING_CODE: u64 = 0x0400_0000;
    /// Graph-processing runtime state.
    pub const GRAPH_HEAP: u64 = 0x6000_0000_0000;
    /// Graph runtime code segment.
    pub const GRAPH_CODE: u64 = 0x0500_0000;
}

/// A contiguous range of the synthetic code segment standing for one
/// compiled function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeRegion {
    /// First byte of the function body.
    pub base: u64,
    /// Size of the body in bytes.
    pub bytes: u32,
    /// Number of dynamic instructions executed per invocation.
    pub instructions: u32,
}

impl CodeRegion {
    /// A function body of `bytes` bytes executing `instructions`
    /// instructions per call.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(base: u64, bytes: u32, instructions: u32) -> Self {
        assert!(bytes > 0, "code region must be non-empty");
        Self { base, bytes, instructions }
    }

    /// A function body whose instruction count follows from its size
    /// (`bytes / 4`): executing the body touches all of it.
    pub fn sized(base: u64, bytes: u32) -> Self {
        Self::new(base, bytes, (bytes / BYTES_PER_INSTRUCTION).max(1))
    }
}

/// Bump allocator handing out non-overlapping synthetic heap ranges.
///
/// # Example
///
/// ```
/// use bdb_archsim::AddressSpace;
/// let mut asp = AddressSpace::new();
/// let a = asp.alloc(4096, "hash table");
/// let b = asp.alloc(4096, "records");
/// assert!(b >= a + 4096);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    heap_base: u64,
    code_base: u64,
    next_heap: u64,
    next_code: u64,
    allocations: Vec<(u64, u64, String)>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// An empty address space rooted at the default workload region.
    pub fn new() -> Self {
        Self::with_bases(HEAP_BASE, CODE_BASE)
    }

    /// An empty address space rooted at custom heap/code bases — use a
    /// pair from [`regions`] so substrate allocations never alias
    /// workload data in a shared machine simulation.
    pub fn with_bases(heap_base: u64, code_base: u64) -> Self {
        Self {
            heap_base,
            code_base,
            next_heap: heap_base,
            next_code: code_base,
            allocations: Vec::new(),
        }
    }

    /// Allocates `bytes` of synthetic heap, aligned to 64 bytes, returning
    /// the base address. `label` is kept for debugging.
    pub fn alloc(&mut self, bytes: u64, label: &str) -> u64 {
        let base = self.next_heap;
        let padded = (bytes.max(1) + 63) & !63;
        self.next_heap += padded;
        self.allocations.push((base, bytes, label.to_owned()));
        base
    }

    /// Allocates a code region of `bytes` bytes whose instruction count
    /// follows from its size.
    pub fn alloc_code(&mut self, bytes: u32) -> CodeRegion {
        let base = self.next_code;
        self.next_code += ((bytes as u64).max(1) + 63) & !63;
        CodeRegion::sized(base, bytes)
    }

    /// Total synthetic heap bytes allocated so far.
    pub fn heap_used(&self) -> u64 {
        self.next_heap - self.heap_base
    }

    /// Total synthetic code bytes allocated so far.
    pub fn code_used(&self) -> u64 {
        self.next_code - self.code_base
    }

    /// The allocation log: `(base, requested_bytes, label)` tuples.
    pub fn allocations(&self) -> &[(u64, u64, String)] {
        &self.allocations
    }
}

/// One layer of a software stack.
#[derive(Debug, Clone)]
pub struct StackLayer {
    /// Layer label (e.g. `"mapreduce-runtime"`).
    pub name: String,
    /// The per-record fast path: small functions called every invoke.
    pub hot: Vec<CodeRegion>,
    /// The occasional path: large bodies touched every `cold_period`
    /// invokes (dispatch misses, allocation slow paths, logging, GC).
    pub cold: Vec<CodeRegion>,
    /// Hot functions called per invoke (rotating through the pool).
    pub hot_calls: u32,
    /// One cold function is fetched every this-many invokes (0 = never).
    pub cold_period: u32,
}

/// A multi-layer code-footprint model for one workload.
///
/// Each [`SoftwareStack::invoke`] models pushing one record/request
/// through every layer: `hot_calls` small resident functions plus —
/// every `cold_period` records — one hash-selected large cold body.
/// The resulting instruction-fetch stream reproduces the paper's
/// observation that deep stacks (Hadoop, app servers) suffer high L1I
/// and ITLB misses while thin runtimes (MPI) do not.
///
/// # Example
///
/// ```
/// use bdb_archsim::{AddressSpace, SoftwareStack, NullProbe};
/// let mut asp = AddressSpace::new();
/// let stack = SoftwareStack::builder("wordcount")
///     .layer(&mut asp, "user-kernel", 2, 512, 4, 4096, 1, 16)
///     .layer(&mut asp, "framework", 6, 512, 128, 4096, 2, 4)
///     .build();
/// let mut probe = NullProbe;
/// stack.invoke(&mut probe, 42);
/// assert!(stack.footprint_bytes() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareStack {
    name: String,
    layers: Vec<StackLayer>,
}

impl SoftwareStack {
    /// Starts building a stack with the given workload name.
    pub fn builder(name: &str) -> SoftwareStackBuilder {
        SoftwareStackBuilder { stack: SoftwareStack { name: name.to_owned(), layers: Vec::new() } }
    }

    /// The workload name this stack models.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers, outermost first.
    pub fn layers(&self) -> &[StackLayer] {
        &self.layers
    }

    /// Total static code footprint in bytes across all layers.
    pub fn footprint_bytes(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.hot.iter().chain(l.cold.iter()))
            .map(|f| f.bytes as u64)
            .sum()
    }

    /// Pushes one record through the stack (see type docs).
    pub fn invoke<P: Probe + ?Sized>(&self, probe: &mut P, seed: u64) {
        for (li, layer) in self.layers.iter().enumerate() {
            let salt = splitmix64(li as u64 + 1);
            if !layer.hot.is_empty() {
                for c in 0..layer.hot_calls as u64 {
                    let idx = (seed.wrapping_add(c) ^ salt) % layer.hot.len() as u64;
                    probe.call(layer.hot[idx as usize]);
                }
            }
            if layer.cold_period > 0
                && !layer.cold.is_empty()
                && seed % layer.cold_period as u64 == salt % layer.cold_period as u64
            {
                let idx = splitmix64(seed ^ salt) % layer.cold.len() as u64;
                probe.call(layer.cold[idx as usize]);
            }
        }
    }

    /// Fetches every function once — models a cold start / JIT warm-up.
    pub fn warm<P: Probe + ?Sized>(&self, probe: &mut P) {
        for layer in &self.layers {
            for f in layer.hot.iter().chain(layer.cold.iter()) {
                probe.call(*f);
            }
        }
    }
}

/// Builder for [`SoftwareStack`].
#[derive(Debug)]
pub struct SoftwareStackBuilder {
    stack: SoftwareStack,
}

impl SoftwareStackBuilder {
    /// Adds a layer:
    ///
    /// * `hot_count` functions of `hot_bytes` each form the fast path;
    /// * `cold_count` functions of `cold_bytes` each form the occasional
    ///   path;
    /// * per invoke, `hot_calls` hot functions run, and every
    ///   `cold_period`-th invoke additionally fetches one cold body
    ///   (`cold_period = 0` disables cold calls).
    #[allow(clippy::too_many_arguments)]
    pub fn layer(
        mut self,
        asp: &mut AddressSpace,
        name: &str,
        hot_count: u32,
        hot_bytes: u32,
        cold_count: u32,
        cold_bytes: u32,
        hot_calls: u32,
        cold_period: u32,
    ) -> Self {
        let hot = (0..hot_count).map(|_| asp.alloc_code(hot_bytes)).collect();
        let cold = (0..cold_count).map(|_| asp.alloc_code(cold_bytes)).collect();
        self.stack.layers.push(StackLayer {
            name: name.to_owned(),
            hot,
            cold,
            hot_calls,
            cold_period,
        });
        self
    }

    /// Finishes the stack.
    pub fn build(self) -> SoftwareStack {
        self.stack
    }
}

/// SplitMix64 — deterministic 64-bit mixing used for function selection
/// and synthetic address hashing throughout the simulator.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::CountingProbe;

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(100, "a");
        let b = asp.alloc(1, "b");
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert_eq!(asp.allocations().len(), 2);
    }

    #[test]
    fn code_and_heap_do_not_overlap() {
        let mut asp = AddressSpace::new();
        let heap = asp.alloc(1 << 20, "heap");
        let code = asp.alloc_code(1 << 20);
        assert!(code.base + code.bytes as u64 <= heap);
    }

    #[test]
    fn sized_region_instruction_density() {
        let r = CodeRegion::sized(0x1000, 4096);
        assert_eq!(r.instructions, 1024);
        assert_eq!(CodeRegion::sized(0x1000, 2).instructions, 1);
    }

    #[test]
    fn hot_calls_fire_every_invoke() {
        let mut asp = AddressSpace::new();
        let stack = SoftwareStack::builder("t").layer(&mut asp, "a", 4, 400, 0, 400, 2, 0).build();
        let mut probe = CountingProbe::default();
        stack.invoke(&mut probe, 7);
        // 2 hot calls x (400/4 = 100 insts).
        assert_eq!(probe.mix().total(), 200);
    }

    #[test]
    fn cold_calls_fire_periodically() {
        let mut asp = AddressSpace::new();
        let stack = SoftwareStack::builder("t").layer(&mut asp, "a", 1, 400, 8, 4000, 1, 4).build();
        let mut with_cold = 0u32;
        for seed in 0..64u64 {
            let mut probe = CountingProbe::default();
            stack.invoke(&mut probe, seed);
            if probe.mix().total() > 100 {
                with_cold += 1;
            }
        }
        assert_eq!(with_cold, 16, "one in four invokes hits a cold body");
    }

    #[test]
    fn invoke_is_deterministic() {
        let mut asp = AddressSpace::new();
        let stack =
            SoftwareStack::builder("t").layer(&mut asp, "a", 8, 512, 16, 2048, 3, 5).build();
        let mut p1 = CountingProbe::default();
        let mut p2 = CountingProbe::default();
        stack.invoke(&mut p1, 123);
        stack.invoke(&mut p2, 123);
        assert_eq!(p1.mix(), p2.mix());
    }

    #[test]
    fn footprint_sums_hot_and_cold() {
        let mut asp = AddressSpace::new();
        let stack = SoftwareStack::builder("t").layer(&mut asp, "a", 2, 100, 3, 1000, 1, 4).build();
        assert_eq!(stack.footprint_bytes(), 2 * 100 + 3 * 1000);
    }

    #[test]
    fn warm_touches_every_function() {
        let mut asp = AddressSpace::new();
        let stack = SoftwareStack::builder("t").layer(&mut asp, "a", 3, 400, 2, 400, 1, 2).build();
        let mut probe = CountingProbe::default();
        stack.warm(&mut probe);
        assert_eq!(probe.mix().total(), 5 * 100);
    }

    #[test]
    fn splitmix_spreads_bits() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
    }
}
