//! Trace-driven micro-architecture simulation for BigDataBench-RS.
//!
//! The BigDataBench paper characterizes its workloads with hardware
//! performance counters on two Intel Xeon processors (E5645 and E5310).
//! This crate replaces the counters with a small, deterministic,
//! trace-driven machine model: workload kernels are written against the
//! [`Probe`] trait and report every memory access, instruction-fetch,
//! branch and arithmetic operation they perform; a [`MachineSim`] replays
//! those events through simulated cache and TLB hierarchies and a simple
//! pipeline timing model.
//!
//! Two probe implementations matter:
//!
//! * [`NullProbe`] — a zero-sized no-op, so the same generic kernel code
//!   runs at native speed when only user-perceivable throughput is wanted;
//! * [`SimProbe`] — drives a [`MachineSim`] configured as one of the
//!   paper's processors (see [`MachineConfig::xeon_e5645`] and
//!   [`MachineConfig::xeon_e5310`]) and accumulates a
//!   [`CharacterizationReport`].
//!
//! # Example
//!
//! ```
//! use bdb_archsim::{MachineConfig, SimProbe, Probe};
//!
//! let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
//! // A tiny "workload": stream over an array, summing.
//! let base = probe.address_space_mut().alloc(4096, "array");
//! for i in 0..512u64 {
//!     probe.load(base + i * 8, 8);
//!     probe.int_ops(1);
//! }
//! let report = probe.finish();
//! assert!(report.instructions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod layout;
pub mod machine;
pub mod metrics;
pub mod probe;
pub mod timing;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use layout::{AddressSpace, CodeRegion, SoftwareStack, StackLayer};
pub use machine::{MachineConfig, MachineSim};
pub use metrics::{
    CharacterizationReport, CounterSnapshot, InstructionMix, LevelStats, PhaseCounters,
    BASE_FEATURES,
};
pub use probe::{CountingProbe, NullProbe, Probe, SimProbe};
pub use timing::TimingModel;
pub use tlb::{Tlb, TlbConfig};
