//! Translation-lookaside-buffer simulation.
//!
//! TLBs are modeled like small set-associative caches over page numbers.
//! The paper reports ITLB and DTLB misses per kilo-instruction (Figure
//! 6-2); both are instances of [`Tlb`] inside [`crate::MachineSim`].

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};

/// Geometry of a TLB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Human-readable name, e.g. `"DTLB"`.
    pub name: String,
    /// Total number of entries.
    pub entries: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Page size in bytes; must be a power of two.
    pub page_size: usize,
}

impl TlbConfig {
    /// Creates a TLB geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `associativity`, the
    /// resulting set count is not a power of two, or `page_size` is not a
    /// power of two.
    pub fn new(name: &str, entries: usize, associativity: usize, page_size: usize) -> Self {
        assert!(entries > 0 && associativity > 0);
        assert_eq!(entries % associativity, 0, "entries must divide by ways");
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        Self { name: name.to_owned(), entries, associativity, page_size }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.associativity
    }
}

/// A set-associative, true-LRU TLB.
///
/// # Example
///
/// ```
/// use bdb_archsim::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig::new("DTLB", 64, 4, 4096));
/// assert!(!tlb.access(0));          // cold miss
/// assert!(tlb.access(100));         // same page: hit
/// assert!(!tlb.access(4096));       // next page: miss
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    num_sets: u64,
    page_shift: u32,
}

impl Tlb {
    /// Builds an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        Self {
            num_sets: sets as u64,
            page_shift: config.page_size.trailing_zeros(),
            sets: vec![Vec::new(); sets],
            stats: CacheStats::default(),
            config,
        }
    }

    /// The geometry this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Translates the page containing byte address `addr`, returning
    /// `true` on a TLB hit and updating LRU state.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> self.page_shift;
        let set_idx = (vpn % self.num_sets) as usize;
        let tag = vpn / self.num_sets;
        self.stats.accesses += 1;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            set.insert(0, tag);
            if set.len() > self.config.associativity {
                set.pop();
            }
            false
        }
    }

    /// Translates every page overlapped by `[addr, addr + bytes)`,
    /// returning the number of pages that missed.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        debug_assert!(bytes > 0);
        let page = self.config.page_size as u64;
        let first = addr & !(page - 1);
        let last = (addr + bytes - 1) & !(page - 1);
        let mut misses = 0;
        let mut a = first;
        loop {
            if !self.access(a) {
                misses += 1;
            }
            if a == last {
                break;
            }
            a += page;
        }
        misses
    }

    /// Zeroes the statistics while keeping TLB contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all entries and zeroes the statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig::new("T", 8, 2, 4096))
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = tiny();
        // 4 sets x 2 ways; pages p and p+4 and p+8 collide in a set.
        let page = 4096u64;
        t.access(0);
        t.access(4 * page);
        t.access(0); // refresh LRU
        t.access(8 * page); // evicts page 4
        assert!(t.access(0));
        assert!(!t.access(4 * page));
    }

    #[test]
    fn range_spans_pages() {
        let mut t = tiny();
        let misses = t.access_range(4090, 10);
        assert_eq!(misses, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size() {
        TlbConfig::new("bad", 8, 2, 1000);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut t = tiny();
        t.access(0);
        t.reset();
        assert!(!t.access(0));
        assert_eq!(t.stats().accesses, 1);
    }
}
