//! The machine model: cache/TLB hierarchy plus event accounting.
//!
//! [`MachineConfig`] captures the two processors from the paper's Tables
//! 5 and 7; [`MachineSim`] routes data accesses and instruction fetches
//! through the hierarchy and produces a
//! [`CharacterizationReport`](crate::CharacterizationReport).

use crate::cache::{Cache, CacheConfig};
use crate::layout::CodeRegion;
use crate::metrics::{CharacterizationReport, CounterSnapshot, InstructionMix};
use crate::timing::TimingModel;
use crate::tlb::{Tlb, TlbConfig};
use serde::{Deserialize, Serialize};

/// Full machine description: hierarchy geometry plus timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Marketing name, e.g. `"Xeon E5645"`.
    pub name: String,
    /// Core frequency in MHz.
    pub freq_mhz: u64,
    /// Core count (informational; the simulator models one core).
    pub cores: u32,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Unified L3 geometry, if the machine has one.
    pub l3: Option<CacheConfig>,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Pipeline timing parameters.
    pub timing: TimingModel,
}

impl MachineConfig {
    /// The Intel Xeon E5645 of the paper's Table 5: 6 cores @ 2.40 GHz,
    /// 32 KiB L1I/L1D, 256 KiB L2 per core, 12 MiB shared L3.
    pub fn xeon_e5645() -> Self {
        Self {
            name: "Xeon E5645".to_owned(),
            freq_mhz: 2400,
            cores: 6,
            l1i: CacheConfig::new("L1I", 32 * 1024, 8, 64),
            l1d: CacheConfig::new("L1D", 32 * 1024, 8, 64),
            l2: CacheConfig::new("L2", 256 * 1024, 8, 64),
            l3: Some(CacheConfig::new("L3", 12 * 1024 * 1024, 16, 64)),
            itlb: TlbConfig::new("ITLB", 128, 4, 4096),
            dtlb: TlbConfig::new("DTLB", 64, 4, 4096),
            timing: TimingModel::westmere(),
        }
    }

    /// The Intel Xeon E5310 of the paper's Table 7: 4 cores @ 1.60 GHz,
    /// 32 KiB L1s, 4 MiB L2, **no L3**.
    pub fn xeon_e5310() -> Self {
        Self {
            name: "Xeon E5310".to_owned(),
            freq_mhz: 1600,
            cores: 4,
            l1i: CacheConfig::new("L1I", 32 * 1024, 8, 64),
            l1d: CacheConfig::new("L1D", 32 * 1024, 8, 64),
            l2: CacheConfig::new("L2", 4 * 1024 * 1024, 16, 64),
            l3: None,
            itlb: TlbConfig::new("ITLB", 128, 4, 4096),
            dtlb: TlbConfig::new("DTLB", 256, 4, 4096),
            timing: TimingModel::clovertown(),
        }
    }
}

/// A two-bit-saturating-counter branch predictor with a small global
/// history table (gshare without per-branch PCs: history-indexed).
#[derive(Debug, Clone)]
struct BranchPredictor {
    counters: Vec<u8>,
    history: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    fn new() -> Self {
        Self { counters: vec![2; 4096], history: 0, mispredicts: 0 }
    }

    fn predict_and_update(&mut self, taken: bool) {
        let idx = (self.history & 0xFFF) as usize;
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        if predicted_taken != taken {
            self.mispredicts += 1;
        }
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }
}

/// Single-core machine simulator: routes events through the hierarchy.
#[derive(Debug, Clone)]
pub struct MachineSim {
    config: MachineConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    predictor: BranchPredictor,
    mix: InstructionMix,
    requested_bytes: u64,
    l2_hits_from_l1: u64,
    l3_hits_from_l2: u64,
    llc_misses: u64,
}

impl MachineSim {
    /// Builds a cold machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            l1i: Cache::new(config.l1i.clone()),
            l1d: Cache::new(config.l1d.clone()),
            l2: Cache::new(config.l2.clone()),
            l3: config.l3.clone().map(Cache::new),
            itlb: Tlb::new(config.itlb.clone()),
            dtlb: Tlb::new(config.dtlb.clone()),
            predictor: BranchPredictor::new(),
            mix: InstructionMix::default(),
            requested_bytes: 0,
            l2_hits_from_l1: 0,
            l3_hits_from_l2: 0,
            llc_misses: 0,
            config,
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Processes a data access (load if `is_store` is false).
    pub fn data_access(&mut self, addr: u64, bytes: u32, is_store: bool) {
        let bytes = bytes.max(1);
        if is_store {
            self.mix.stores += 1;
        } else {
            self.mix.loads += 1;
        }
        self.requested_bytes += bytes as u64;
        self.dtlb.access_range(addr, bytes as u64);
        self.walk_lines(addr, bytes as u64, false);
    }

    /// Processes an instruction fetch of one function body, crediting
    /// its dynamic instructions decomposed into classes (see
    /// [`InstructionMix::credit_code`]).
    pub fn ifetch(&mut self, region: CodeRegion) {
        self.mix.credit_code(region.instructions as u64);
        self.itlb.access_range(region.base, region.bytes as u64);
        self.walk_lines(region.base, region.bytes as u64, true);
    }

    /// Records `n` integer ALU instructions.
    pub fn int_ops(&mut self, n: u64) {
        self.mix.int_ops += n;
    }

    /// Records `n` floating-point instructions.
    pub fn fp_ops(&mut self, n: u64) {
        self.mix.fp_ops += n;
    }

    /// Records a branch and runs it through the predictor.
    pub fn branch(&mut self, taken: bool) {
        self.mix.branches += 1;
        self.predictor.predict_and_update(taken);
    }

    /// Walks each line of `[addr, addr+bytes)` through L1→L2→L3.
    fn walk_lines(&mut self, addr: u64, bytes: u64, instruction: bool) {
        let line = self.l2.line_size() as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut a = first;
        loop {
            let l1 = if instruction { &mut self.l1i } else { &mut self.l1d };
            if !l1.access(a) {
                if self.l2.access(a) {
                    self.l2_hits_from_l1 += 1;
                } else if let Some(l3) = self.l3.as_mut() {
                    if l3.access(a) {
                        self.l3_hits_from_l2 += 1;
                    } else {
                        self.llc_misses += 1;
                    }
                } else {
                    self.llc_misses += 1;
                }
            }
            if a == last {
                break;
            }
            a += line;
        }
    }

    /// Zeroes all statistics (instruction mix, cache/TLB counters,
    /// predictor outcomes) while keeping cache and TLB contents — the
    /// paper's "collect after a ramp-up period" protocol.
    pub fn reset_stats(&mut self) {
        self.mix = InstructionMix::default();
        self.requested_bytes = 0;
        self.l2_hits_from_l1 = 0;
        self.l3_hits_from_l2 = 0;
        self.llc_misses = 0;
        self.predictor.mispredicts = 0;
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        if let Some(l3) = self.l3.as_mut() {
            l3.reset_stats();
        }
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    /// Misses that went all the way to DRAM.
    pub fn llc_misses(&self) -> u64 {
        self.llc_misses
    }

    /// Takes a cheap point-in-time copy of every counter — a handful of
    /// integers, no cache contents. Pair two snapshots with
    /// [`CounterSnapshot::delta_since`] to attribute the interval's
    /// events to a span or phase.
    pub fn snapshot_counters(&self) -> CounterSnapshot {
        let tlb_misses = self.itlb.stats().misses + self.dtlb.stats().misses;
        let cycles = self.config.timing.cycles(
            self.mix.total(),
            self.l2_hits_from_l1,
            self.l3_hits_from_l2,
            self.llc_misses,
            tlb_misses,
            self.predictor.mispredicts,
        );
        CounterSnapshot {
            mix: self.mix,
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.as_ref().map(|c| c.stats()),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
            requested_bytes: self.requested_bytes,
            llc_misses: self.llc_misses,
            mispredicts: self.predictor.mispredicts,
            dram_bytes: self.llc_misses * self.l2.line_size() as u64,
            cycles,
        }
    }

    /// Builds the characterization report for events so far.
    pub fn report(&self) -> CharacterizationReport {
        self.snapshot_counters().to_report(&self.config.name, self.config.freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5645_matches_table5() {
        let c = MachineConfig::xeon_e5645();
        assert_eq!(c.l1i.capacity, 32 * 1024);
        assert_eq!(c.l2.capacity, 256 * 1024);
        assert_eq!(c.l3.as_ref().unwrap().capacity, 12 * 1024 * 1024);
        assert_eq!(c.freq_mhz, 2400);
        assert_eq!(c.cores, 6);
    }

    #[test]
    fn e5310_matches_table7() {
        let c = MachineConfig::xeon_e5310();
        assert!(c.l3.is_none());
        assert_eq!(c.l2.capacity, 4 * 1024 * 1024);
        assert_eq!(c.freq_mhz, 1600);
    }

    #[test]
    fn streaming_misses_go_to_dram() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        // Stream 64 MiB: far beyond L3, every new line should reach DRAM.
        for i in 0..(1u64 << 20) {
            m.data_access(i * 64, 8, false);
        }
        let r = m.report();
        assert_eq!(r.mix.loads, 1 << 20);
        // Each access touches a fresh line: all should miss every level.
        assert_eq!(r.l1d.stats.misses, 1 << 20);
        assert_eq!(m.llc_misses(), 1 << 20);
        assert_eq!(r.dram_bytes, (1u64 << 20) * 64);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        for _ in 0..100 {
            for i in 0..128u64 {
                m.data_access(i * 64, 8, false);
            }
        }
        let r = m.report();
        assert_eq!(r.l1d.stats.misses, 128); // cold misses only
        assert_eq!(m.llc_misses(), 128);
    }

    #[test]
    fn l3_absorbs_l2_overflow_on_e5645() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        // Working set 1 MiB: fits L3 (12 MiB), exceeds L2 (256 KiB).
        let lines = (1u64 << 20) / 64;
        for _ in 0..4 {
            for i in 0..lines {
                m.data_access(i * 64, 8, false);
            }
        }
        let r = m.report();
        // After the cold pass, L2 thrashes but L3 holds everything.
        assert_eq!(m.llc_misses(), lines);
        assert!(r.l2.stats.misses > lines, "L2 should keep missing");
    }

    #[test]
    fn same_working_set_hits_dram_more_on_e5310() {
        // 1 MiB working set: E5310's 4MiB L2 holds it; but 8 MiB exceeds
        // E5310 LLC while fitting E5645's L3.
        let run = |cfg: MachineConfig| {
            let mut m = MachineSim::new(cfg);
            let lines = (8u64 << 20) / 64;
            for _ in 0..3 {
                for i in 0..lines {
                    m.data_access(i * 64, 8, false);
                }
            }
            m.report()
        };
        let big = run(MachineConfig::xeon_e5645());
        let small = run(MachineConfig::xeon_e5310());
        assert!(small.dram_bytes > big.dram_bytes);
        // Which is exactly why FP intensity is higher on E5645 (paper §6.3.1).
    }

    #[test]
    fn ifetch_credits_instructions_and_itlb() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        m.ifetch(CodeRegion::new(0x400000, 8192, 2000));
        let r = m.report();
        assert_eq!(r.instructions(), 2000);
        assert!(r.mix.other > 1000, "majority is integer-class framework code");
        assert!(r.mix.fp_ops > 0, "code decomposition includes a sliver of FP");
        assert!(r.itlb.stats.accesses >= 2);
        assert!(r.l1i.stats.misses > 0);
    }

    #[test]
    fn branch_predictor_learns_bias() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        for _ in 0..10_000 {
            m.branch(true);
        }
        // A fully biased branch should be almost always predicted.
        assert!(m.predictor.mispredicts < 20);
    }

    #[test]
    fn report_mips_positive_under_load() {
        let mut m = MachineSim::new(MachineConfig::xeon_e5645());
        for i in 0..1000u64 {
            m.data_access(i * 8, 8, i % 2 == 0);
            m.int_ops(3);
        }
        let r = m.report();
        assert!(r.mips() > 0.0);
        assert!(r.ipc() > 0.0 && r.ipc() < 4.0);
    }
}
