//! Characterization metrics mirroring the paper's Section 6.
//!
//! A [`CharacterizationReport`] carries everything needed to regenerate
//! Figures 2–6: the dynamic instruction breakdown (Figure 4), per-level
//! cache and TLB statistics (Figures 2 and 6), operation intensities
//! (Figure 5), and the timing-model MIPS estimate (Figure 3-1).

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dynamic instruction breakdown by class (paper Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Integer ALU instructions.
    pub int_ops: u64,
    /// Floating-point instructions.
    pub fp_ops: u64,
    /// Other instructions attributed by code-region fetch (framework
    /// overhead, address generation, moves) — counted as integer-class
    /// when computing ratios, matching how `perf` buckets them.
    pub other: u64,
}

impl InstructionMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.branches + self.int_ops + self.fp_ops + self.other
    }

    /// Integer instructions including framework/other overhead.
    pub fn integer_class(&self) -> u64 {
        self.int_ops + self.other
    }

    /// Ratio of integer-class to floating-point instructions.
    ///
    /// Returns `f64::INFINITY` when no FP instructions were executed.
    pub fn int_to_fp_ratio(&self) -> f64 {
        if self.fp_ops == 0 {
            f64::INFINITY
        } else {
            self.integer_class() as f64 / self.fp_ops as f64
        }
    }

    /// Fraction of `class` out of the total, in `[0, 1]`.
    pub fn fraction(&self, class: InstClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match class {
            InstClass::Load => self.loads,
            InstClass::Store => self.stores,
            InstClass::Branch => self.branches,
            InstClass::Int => self.integer_class(),
            InstClass::Fp => self.fp_ops,
        };
        n as f64 / t as f64
    }

    /// Credits `insts` instructions of framework/library code fetched
    /// via [`crate::CodeRegion`], decomposed statistically into classes
    /// (x86-64 server-code averages: 22% loads, 8% stores, 17% branches,
    /// 0.6% FP, the rest integer/move). Framework loads/stores counted
    /// here do not generate data-cache traffic — substrate trace models
    /// emit explicit data accesses for the structures that matter.
    pub fn credit_code(&mut self, insts: u64) {
        let loads = insts * 22 / 100;
        let stores = insts * 8 / 100;
        let branches = insts * 17 / 100;
        let fp = insts * 6 / 1000;
        self.loads += loads;
        self.stores += stores;
        self.branches += branches;
        self.fp_ops += fp;
        self.other += insts - loads - stores - branches - fp;
    }

    /// Adds another mix into this one.
    pub fn merge(&mut self, other: &InstructionMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.other += other.other;
    }
}

/// Instruction classes used for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch.
    Branch,
    /// Integer ALU (incl. framework overhead instructions).
    Int,
    /// Floating point.
    Fp,
}

/// Per-level cache/TLB statistics in a finished report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Raw access counters.
    pub stats: CacheStats,
}

impl LevelStats {
    /// Misses per kilo-instruction at this level.
    pub fn mpki(&self, instructions: u64) -> f64 {
        self.stats.mpki(instructions)
    }
}

impl From<CacheStats> for LevelStats {
    fn from(stats: CacheStats) -> Self {
        Self { stats }
    }
}

/// Everything the simulator learned from one characterized run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Machine configuration name (e.g. `"Xeon E5645"`).
    pub machine: String,
    /// Dynamic instruction breakdown.
    pub mix: InstructionMix,
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// L1 data cache.
    pub l1d: LevelStats,
    /// Unified L2.
    pub l2: LevelStats,
    /// Unified L3 (zero stats when the machine has no L3, e.g. E5310).
    pub l3: Option<LevelStats>,
    /// Instruction TLB.
    pub itlb: LevelStats,
    /// Data TLB.
    pub dtlb: LevelStats,
    /// Bytes transferred from DRAM (last-level misses × line size).
    pub dram_bytes: u64,
    /// Total bytes requested by loads and stores (pre-hierarchy).
    pub requested_bytes: u64,
    /// Cycles estimated by the timing model.
    pub cycles: u64,
    /// Core frequency in MHz used for the MIPS estimate.
    pub freq_mhz: u64,
}

impl CharacterizationReport {
    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.mix.total()
    }

    /// Million instructions per second from the timing model
    /// (paper Figure 3-1).
    pub fn mips(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mix.total() as f64 * self.freq_mhz as f64 / self.cycles as f64
        }
    }

    /// Instructions per cycle from the timing model.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mix.total() as f64 / self.cycles as f64
        }
    }

    /// Floating-point operation intensity: FP instructions per byte of
    /// DRAM traffic (paper Figure 5-1, after Williams et al.'s roofline).
    pub fn fp_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            self.mix.fp_ops as f64 / self.dram_bytes as f64
        }
    }

    /// Integer operation intensity: integer-class instructions per byte
    /// of DRAM traffic (paper Figure 5-2).
    pub fn int_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            self.mix.integer_class() as f64 / self.dram_bytes as f64
        }
    }

    /// L1I misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        self.l1i.mpki(self.instructions())
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.l2.mpki(self.instructions())
    }

    /// L3 misses per kilo-instruction; zero for machines without L3.
    pub fn l3_mpki(&self) -> f64 {
        self.l3.map_or(0.0, |l| l.mpki(self.instructions()))
    }

    /// ITLB misses per kilo-instruction.
    pub fn itlb_mpki(&self) -> f64 {
        self.itlb.mpki(self.instructions())
    }

    /// DTLB misses per kilo-instruction.
    pub fn dtlb_mpki(&self) -> f64 {
        self.dtlb.mpki(self.instructions())
    }
}

impl fmt::Display for CharacterizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine: {}", self.machine)?;
        writeln!(f, "instructions: {}", self.instructions())?;
        writeln!(f, "MIPS: {:.0}  IPC: {:.2}", self.mips(), self.ipc())?;
        writeln!(
            f,
            "MPKI  L1I {:.2}  L2 {:.2}  L3 {:.2}  ITLB {:.3}  DTLB {:.3}",
            self.l1i_mpki(),
            self.l2_mpki(),
            self.l3_mpki(),
            self.itlb_mpki(),
            self.dtlb_mpki()
        )?;
        write!(
            f,
            "intensity  fp {:.4}  int {:.3}  int:fp {:.1}",
            self.fp_intensity(),
            self.int_intensity(),
            self.mix.int_to_fp_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstructionMix {
        InstructionMix {
            loads: 100,
            stores: 50,
            branches: 30,
            int_ops: 200,
            fp_ops: 20,
            other: 100,
        }
    }

    #[test]
    fn totals_and_ratios() {
        let m = mix();
        assert_eq!(m.total(), 500);
        assert_eq!(m.integer_class(), 300);
        assert!((m.int_to_fp_ratio() - 15.0).abs() < 1e-12);
        assert!((m.fraction(InstClass::Load) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn infinite_ratio_without_fp() {
        let m = InstructionMix { int_ops: 10, ..Default::default() };
        assert!(m.int_to_fp_ratio().is_infinite());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = mix();
        a.merge(&mix());
        assert_eq!(a.total(), 1000);
    }

    #[test]
    fn report_derived_metrics() {
        let r = CharacterizationReport {
            machine: "t".into(),
            mix: mix(),
            cycles: 1000,
            freq_mhz: 2400,
            dram_bytes: 1000,
            ..Default::default()
        };
        // 500 inst / 1000 cycles * 2400 MHz = 1200 MIPS
        assert!((r.mips() - 1200.0).abs() < 1e-9);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.fp_intensity() - 0.02).abs() < 1e-12);
        assert!((r.int_intensity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let r = CharacterizationReport::default();
        assert_eq!(r.mips(), 0.0);
        assert_eq!(r.fp_intensity(), 0.0);
        assert_eq!(r.l3_mpki(), 0.0);
    }

    #[test]
    fn report_serializes_roundtrip() {
        let r = CharacterizationReport { machine: "x".into(), mix: mix(), ..Default::default() };
        let json = serde_json::to_string(&r).unwrap();
        let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mix, r.mix);
    }
}
