//! Characterization metrics mirroring the paper's Section 6.
//!
//! A [`CharacterizationReport`] carries everything needed to regenerate
//! Figures 2–6: the dynamic instruction breakdown (Figure 4), per-level
//! cache and TLB statistics (Figures 2 and 6), operation intensities
//! (Figure 5), and the timing-model MIPS estimate (Figure 3-1).

use crate::cache::CacheStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dynamic instruction breakdown by class (paper Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Integer ALU instructions.
    pub int_ops: u64,
    /// Floating-point instructions.
    pub fp_ops: u64,
    /// Other instructions attributed by code-region fetch (framework
    /// overhead, address generation, moves) — counted as integer-class
    /// when computing ratios, matching how `perf` buckets them.
    pub other: u64,
}

impl InstructionMix {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.branches + self.int_ops + self.fp_ops + self.other
    }

    /// Integer instructions including framework/other overhead.
    pub fn integer_class(&self) -> u64 {
        self.int_ops + self.other
    }

    /// Ratio of integer-class to floating-point instructions.
    ///
    /// Returns `f64::INFINITY` when no FP instructions were executed.
    pub fn int_to_fp_ratio(&self) -> f64 {
        if self.fp_ops == 0 {
            f64::INFINITY
        } else {
            self.integer_class() as f64 / self.fp_ops as f64
        }
    }

    /// Fraction of `class` out of the total, in `[0, 1]`.
    pub fn fraction(&self, class: InstClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match class {
            InstClass::Load => self.loads,
            InstClass::Store => self.stores,
            InstClass::Branch => self.branches,
            InstClass::Int => self.integer_class(),
            InstClass::Fp => self.fp_ops,
        };
        n as f64 / t as f64
    }

    /// Credits `insts` instructions of framework/library code fetched
    /// via [`crate::CodeRegion`], decomposed statistically into classes
    /// (x86-64 server-code averages: 22% loads, 8% stores, 17% branches,
    /// 0.6% FP, the rest integer/move). Framework loads/stores counted
    /// here do not generate data-cache traffic — substrate trace models
    /// emit explicit data accesses for the structures that matter.
    pub fn credit_code(&mut self, insts: u64) {
        let loads = insts * 22 / 100;
        let stores = insts * 8 / 100;
        let branches = insts * 17 / 100;
        let fp = insts * 6 / 1000;
        self.loads += loads;
        self.stores += stores;
        self.branches += branches;
        self.fp_ops += fp;
        self.other += insts - loads - stores - branches - fp;
    }

    /// Adds another mix into this one.
    pub fn merge(&mut self, other: &InstructionMix) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.other += other.other;
    }

    /// Counter increase since `earlier` (field-wise, saturating at zero).
    pub fn delta_since(&self, earlier: &InstructionMix) -> InstructionMix {
        InstructionMix {
            loads: self.loads.saturating_sub(earlier.loads),
            stores: self.stores.saturating_sub(earlier.stores),
            branches: self.branches.saturating_sub(earlier.branches),
            int_ops: self.int_ops.saturating_sub(earlier.int_ops),
            fp_ops: self.fp_ops.saturating_sub(earlier.fp_ops),
            other: self.other.saturating_sub(earlier.other),
        }
    }
}

/// Instruction classes used for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch.
    Branch,
    /// Integer ALU (incl. framework overhead instructions).
    Int,
    /// Floating point.
    Fp,
}

/// Per-level cache/TLB statistics in a finished report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Raw access counters.
    pub stats: CacheStats,
}

impl LevelStats {
    /// Misses per kilo-instruction at this level.
    pub fn mpki(&self, instructions: u64) -> f64 {
        self.stats.mpki(instructions)
    }
}

impl From<CacheStats> for LevelStats {
    fn from(stats: CacheStats) -> Self {
        Self { stats }
    }
}

/// A point-in-time copy of every counter a [`crate::MachineSim`] keeps.
///
/// Snapshots are cheap (a handful of integers, no cache contents) and
/// support exact attribution: because every field is a monotone running
/// total, `later.delta_since(&earlier)` yields the events of the
/// interval, and deltas over consecutive snapshots telescope — summing
/// them reproduces the whole-run totals exactly, including `cycles`
/// (each snapshot's cycle count is rounded the same way, so consecutive
/// differences cancel).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dynamic instruction breakdown so far.
    pub mix: InstructionMix,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Unified L3 counters, if the machine has an L3.
    pub l3: Option<CacheStats>,
    /// Instruction TLB counters.
    pub itlb: CacheStats,
    /// Data TLB counters.
    pub dtlb: CacheStats,
    /// Bytes requested by loads and stores (pre-hierarchy).
    pub requested_bytes: u64,
    /// Misses that went all the way to DRAM.
    pub llc_misses: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Bytes transferred from DRAM (LLC misses × line size).
    pub dram_bytes: u64,
    /// Cycles estimated by the timing model.
    pub cycles: u64,
}

impl CounterSnapshot {
    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.mix.total()
    }

    /// Counter increase since `earlier` (field-wise, saturating at zero).
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            mix: self.mix.delta_since(&earlier.mix),
            l1i: self.l1i.delta_since(&earlier.l1i),
            l1d: self.l1d.delta_since(&earlier.l1d),
            l2: self.l2.delta_since(&earlier.l2),
            l3: self.l3.map(|s| s.delta_since(&earlier.l3.unwrap_or_default())),
            itlb: self.itlb.delta_since(&earlier.itlb),
            dtlb: self.dtlb.delta_since(&earlier.dtlb),
            requested_bytes: self.requested_bytes.saturating_sub(earlier.requested_bytes),
            llc_misses: self.llc_misses.saturating_sub(earlier.llc_misses),
            mispredicts: self.mispredicts.saturating_sub(earlier.mispredicts),
            dram_bytes: self.dram_bytes.saturating_sub(earlier.dram_bytes),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }

    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.mix.merge(&other.mix);
        self.l1i.merge(&other.l1i);
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        match (&mut self.l3, &other.l3) {
            (Some(a), Some(b)) => a.merge(b),
            (l3 @ None, Some(b)) => *l3 = Some(*b),
            _ => {}
        }
        self.itlb.merge(&other.itlb);
        self.dtlb.merge(&other.dtlb);
        self.requested_bytes += other.requested_bytes;
        self.llc_misses += other.llc_misses;
        self.mispredicts += other.mispredicts;
        self.dram_bytes += other.dram_bytes;
        self.cycles += other.cycles;
    }

    /// The snapshot as `("counter.<name>", value)` pairs with a fixed,
    /// `'static` key set — the bridge format consumed by telemetry span
    /// args and the Chrome-trace counter tracks. Every snapshot emits
    /// the same keys (an absent L3 reports zero misses) so counter
    /// tracks line up across spans.
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("counter.instructions", self.mix.total()),
            ("counter.loads", self.mix.loads),
            ("counter.stores", self.mix.stores),
            ("counter.branches", self.mix.branches),
            ("counter.int_ops", self.mix.int_ops),
            ("counter.fp_ops", self.mix.fp_ops),
            ("counter.l1i_misses", self.l1i.misses),
            ("counter.l1d_misses", self.l1d.misses),
            ("counter.l2_misses", self.l2.misses),
            ("counter.l3_misses", self.l3.map_or(0, |s| s.misses)),
            ("counter.itlb_misses", self.itlb.misses),
            ("counter.dtlb_misses", self.dtlb.misses),
            ("counter.llc_misses", self.llc_misses),
            ("counter.branch_mispredicts", self.mispredicts),
            ("counter.dram_bytes", self.dram_bytes),
            ("counter.cycles", self.cycles),
        ]
    }

    /// Expands the snapshot into a full [`CharacterizationReport`] (with
    /// no phases of its own) so per-phase counters can reuse every
    /// derived metric — MPKI, MIPS, operation intensity.
    pub fn to_report(&self, machine: &str, freq_mhz: u64) -> CharacterizationReport {
        CharacterizationReport {
            machine: machine.to_owned(),
            mix: self.mix,
            l1i: self.l1i.into(),
            l1d: self.l1d.into(),
            l2: self.l2.into(),
            l3: self.l3.map(Into::into),
            itlb: self.itlb.into(),
            dtlb: self.dtlb.into(),
            dram_bytes: self.dram_bytes,
            requested_bytes: self.requested_bytes,
            mispredicts: self.mispredicts,
            cycles: self.cycles,
            freq_mhz,
            phases: Vec::new(),
        }
    }
}

/// Counter deltas attributed to one named phase of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseCounters {
    /// Phase name, e.g. `"map"`, `"shuffle"`, `"iter-3"`.
    pub name: String,
    /// Events credited to this phase.
    pub counters: CounterSnapshot,
}

/// The names of [`CharacterizationReport::feature_vector`]'s entries,
/// in emission order: rate metrics, the memory-hierarchy MPKI ladder,
/// the dynamic instruction mix, and the roofline operation intensities.
pub const BASE_FEATURES: [&str; 16] = [
    "ipc",
    "mips",
    "l1i_mpki",
    "l1d_mpki",
    "l2_mpki",
    "l3_mpki",
    "itlb_mpki",
    "dtlb_mpki",
    "branch_mpki",
    "load_frac",
    "store_frac",
    "branch_frac",
    "int_frac",
    "fp_frac",
    "int_per_dram_byte",
    "fp_per_dram_byte",
];

/// Everything the simulator learned from one characterized run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// Machine configuration name (e.g. `"Xeon E5645"`).
    pub machine: String,
    /// Dynamic instruction breakdown.
    pub mix: InstructionMix,
    /// L1 instruction cache.
    pub l1i: LevelStats,
    /// L1 data cache.
    pub l1d: LevelStats,
    /// Unified L2.
    pub l2: LevelStats,
    /// Unified L3 (zero stats when the machine has no L3, e.g. E5310).
    pub l3: Option<LevelStats>,
    /// Instruction TLB.
    pub itlb: LevelStats,
    /// Data TLB.
    pub dtlb: LevelStats,
    /// Bytes transferred from DRAM (last-level misses × line size).
    pub dram_bytes: u64,
    /// Total bytes requested by loads and stores (pre-hierarchy).
    pub requested_bytes: u64,
    /// Branch mispredictions from the 2-bit/gshare predictor.
    pub mispredicts: u64,
    /// Cycles estimated by the timing model.
    pub cycles: u64,
    /// Core frequency in MHz used for the MIPS estimate.
    pub freq_mhz: u64,
    /// Per-phase counter deltas in first-appearance order; empty when
    /// the probe saw no phase marks. Integer counters sum exactly to
    /// the whole-run totals above (deltas telescope).
    pub phases: Vec<PhaseCounters>,
}

impl CharacterizationReport {
    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.mix.total()
    }

    /// Million instructions per second from the timing model
    /// (paper Figure 3-1).
    pub fn mips(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mix.total() as f64 * self.freq_mhz as f64 / self.cycles as f64
        }
    }

    /// Instructions per cycle from the timing model.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mix.total() as f64 / self.cycles as f64
        }
    }

    /// Floating-point operation intensity: FP instructions per byte of
    /// DRAM traffic (paper Figure 5-1, after Williams et al.'s roofline).
    pub fn fp_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            self.mix.fp_ops as f64 / self.dram_bytes as f64
        }
    }

    /// Integer operation intensity: integer-class instructions per byte
    /// of DRAM traffic (paper Figure 5-2).
    pub fn int_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            0.0
        } else {
            self.mix.integer_class() as f64 / self.dram_bytes as f64
        }
    }

    /// L1I misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        self.l1i.mpki(self.instructions())
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.l2.mpki(self.instructions())
    }

    /// L3 misses per kilo-instruction; zero for machines without L3.
    pub fn l3_mpki(&self) -> f64 {
        self.l3.map_or(0.0, |l| l.mpki(self.instructions()))
    }

    /// ITLB misses per kilo-instruction.
    pub fn itlb_mpki(&self) -> f64 {
        self.itlb.mpki(self.instructions())
    }

    /// DTLB misses per kilo-instruction.
    pub fn dtlb_mpki(&self) -> f64 {
        self.dtlb.mpki(self.instructions())
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        let instructions = self.instructions();
        if instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 * 1000.0 / instructions as f64
        }
    }

    /// The fixed micro-architectural feature vector of this report, as
    /// `(name, value)` pairs in [`BASE_FEATURES`] order — the raw input
    /// to the workload-subsetting pipeline (`bdb-charmap`), after Jia et
    /// al., "Characterizing and Subsetting Big Data Workloads". Every
    /// report emits the same names in the same order so vectors from
    /// different workloads are directly comparable.
    pub fn feature_vector(&self) -> Vec<(&'static str, f64)> {
        let v = vec![
            ("ipc", self.ipc()),
            ("mips", self.mips()),
            ("l1i_mpki", self.l1i_mpki()),
            ("l1d_mpki", self.l1d.mpki(self.instructions())),
            ("l2_mpki", self.l2_mpki()),
            ("l3_mpki", self.l3_mpki()),
            ("itlb_mpki", self.itlb_mpki()),
            ("dtlb_mpki", self.dtlb_mpki()),
            ("branch_mpki", self.branch_mpki()),
            ("load_frac", self.mix.fraction(InstClass::Load)),
            ("store_frac", self.mix.fraction(InstClass::Store)),
            ("branch_frac", self.mix.fraction(InstClass::Branch)),
            ("int_frac", self.mix.fraction(InstClass::Int)),
            ("fp_frac", self.mix.fraction(InstClass::Fp)),
            ("int_per_dram_byte", self.int_intensity()),
            ("fp_per_dram_byte", self.fp_intensity()),
        ];
        debug_assert_eq!(v.len(), BASE_FEATURES.len());
        debug_assert!(v.iter().map(|(n, _)| *n).eq(BASE_FEATURES.iter().copied()));
        v
    }

    /// Expands each phase into its own report (machine name and core
    /// frequency inherited from the whole-run report) so every derived
    /// metric — MPKI, MIPS, operation intensity — is available per
    /// phase. Order matches [`CharacterizationReport::phases`].
    pub fn phase_reports(&self) -> Vec<(String, CharacterizationReport)> {
        self.phases
            .iter()
            .map(|p| (p.name.clone(), p.counters.to_report(&self.machine, self.freq_mhz)))
            .collect()
    }
}

impl fmt::Display for CharacterizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "machine: {}", self.machine)?;
        writeln!(f, "instructions: {}", self.instructions())?;
        writeln!(f, "MIPS: {:.0}  IPC: {:.2}", self.mips(), self.ipc())?;
        writeln!(
            f,
            "MPKI  L1I {:.2}  L2 {:.2}  L3 {:.2}  ITLB {:.3}  DTLB {:.3}",
            self.l1i_mpki(),
            self.l2_mpki(),
            self.l3_mpki(),
            self.itlb_mpki(),
            self.dtlb_mpki()
        )?;
        write!(
            f,
            "intensity  fp {:.4}  int {:.3}  int:fp {:.1}",
            self.fp_intensity(),
            self.int_intensity(),
            self.mix.int_to_fp_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstructionMix {
        InstructionMix {
            loads: 100,
            stores: 50,
            branches: 30,
            int_ops: 200,
            fp_ops: 20,
            other: 100,
        }
    }

    #[test]
    fn totals_and_ratios() {
        let m = mix();
        assert_eq!(m.total(), 500);
        assert_eq!(m.integer_class(), 300);
        assert!((m.int_to_fp_ratio() - 15.0).abs() < 1e-12);
        assert!((m.fraction(InstClass::Load) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn infinite_ratio_without_fp() {
        let m = InstructionMix { int_ops: 10, ..Default::default() };
        assert!(m.int_to_fp_ratio().is_infinite());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = mix();
        a.merge(&mix());
        assert_eq!(a.total(), 1000);
    }

    #[test]
    fn report_derived_metrics() {
        let r = CharacterizationReport {
            machine: "t".into(),
            mix: mix(),
            cycles: 1000,
            freq_mhz: 2400,
            dram_bytes: 1000,
            ..Default::default()
        };
        // 500 inst / 1000 cycles * 2400 MHz = 1200 MIPS
        assert!((r.mips() - 1200.0).abs() < 1e-9);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.fp_intensity() - 0.02).abs() < 1e-12);
        assert!((r.int_intensity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let r = CharacterizationReport::default();
        assert_eq!(r.mips(), 0.0);
        assert_eq!(r.fp_intensity(), 0.0);
        assert_eq!(r.l3_mpki(), 0.0);
    }

    #[test]
    fn report_serializes_roundtrip() {
        let r = CharacterizationReport { machine: "x".into(), mix: mix(), ..Default::default() };
        let json = serde_json::to_string(&r).unwrap();
        let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mix, r.mix);
    }

    fn snap(scale: u64) -> CounterSnapshot {
        CounterSnapshot {
            mix: InstructionMix { loads: 10 * scale, int_ops: 5 * scale, ..Default::default() },
            l1d: CacheStats { accesses: 10 * scale, misses: scale },
            l3: Some(CacheStats { accesses: scale, misses: scale / 2 }),
            requested_bytes: 80 * scale,
            llc_misses: scale / 2,
            dram_bytes: 32 * scale,
            cycles: 100 * scale,
            ..Default::default()
        }
    }

    #[test]
    fn snapshot_delta_and_merge_roundtrip() {
        let earlier = snap(2);
        let later = snap(5);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.mix.loads, 30);
        assert_eq!(delta.l1d.misses, 3);
        assert_eq!(delta.l3.unwrap().misses, 1);
        assert_eq!(delta.cycles, 300);
        let mut acc = earlier.clone();
        acc.merge(&delta);
        assert_eq!(acc, later);
        // Reversed delta saturates to zeros rather than wrapping.
        assert_eq!(
            earlier.delta_since(&later),
            CounterSnapshot { l3: Some(CacheStats::default()), ..Default::default() }
        );
    }

    #[test]
    fn named_counters_have_fixed_static_keys() {
        let with_l3 = snap(1);
        let without_l3 = CounterSnapshot { l3: None, ..snap(1) };
        let a = with_l3.named_counters();
        let b = without_l3.named_counters();
        assert_eq!(a.len(), b.len(), "key set must not depend on the machine");
        for ((ka, _), (kb, _)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert!(ka.starts_with("counter."));
        }
        let insts = a.iter().find(|(k, _)| *k == "counter.instructions").unwrap().1;
        assert_eq!(insts, with_l3.instructions());
    }

    #[test]
    fn snapshot_to_report_carries_derived_metrics() {
        let s = snap(4);
        let r = s.to_report("Xeon E5645", 2400);
        assert_eq!(r.machine, "Xeon E5645");
        assert_eq!(r.instructions(), s.instructions());
        assert_eq!(r.cycles, s.cycles);
        assert!(r.mips() > 0.0);
        assert!(r.phases.is_empty());
    }

    #[test]
    fn feature_vector_matches_base_features_and_derived_metrics() {
        let mut s = snap(4);
        s.mispredicts = 3;
        let r = s.to_report("Xeon E5645", 2400);
        let v = r.feature_vector();
        assert_eq!(v.len(), BASE_FEATURES.len());
        let names: Vec<&str> = v.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, BASE_FEATURES.to_vec());
        let get = |name: &str| v.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!((get("ipc") - r.ipc()).abs() < 1e-12);
        assert!((get("branch_mpki") - 3.0 * 1000.0 / r.instructions() as f64).abs() < 1e-12);
        assert!(v.iter().all(|(_, x)| x.is_finite()), "features must be finite: {v:?}");
        // A report with no instructions emits all-zero rates, not NaN.
        let empty = CharacterizationReport::default();
        assert!(empty.feature_vector().iter().all(|(_, x)| *x == 0.0));
    }

    #[test]
    fn phase_reports_inherit_machine_and_frequency() {
        let r = CharacterizationReport {
            machine: "m".into(),
            freq_mhz: 1600,
            phases: vec![
                PhaseCounters { name: "map".into(), counters: snap(1) },
                PhaseCounters { name: "reduce".into(), counters: snap(2) },
            ],
            ..Default::default()
        };
        let per_phase = r.phase_reports();
        assert_eq!(per_phase.len(), 2);
        assert_eq!(per_phase[0].0, "map");
        assert_eq!(per_phase[1].1.machine, "m");
        assert_eq!(per_phase[1].1.freq_mhz, 1600);
        assert_eq!(per_phase[1].1.instructions(), snap(2).instructions());
    }
}
