//! The [`Probe`] trait and its implementations.
//!
//! Workload kernels are generic over `P: Probe`. With [`NullProbe`]
//! every call compiles to nothing, giving native-speed throughput runs;
//! with [`SimProbe`] every call drives the machine model.

use crate::layout::{AddressSpace, CodeRegion};
use crate::machine::{MachineConfig, MachineSim};
use crate::metrics::{CharacterizationReport, CounterSnapshot, InstructionMix, PhaseCounters};

/// Receiver of micro-architectural events emitted by instrumented kernels.
///
/// All methods have empty default bodies so probe implementations only
/// override what they observe; [`NullProbe`] overrides nothing.
pub trait Probe {
    /// A memory load of `bytes` bytes at synthetic address `addr`.
    #[inline(always)]
    fn load(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// A memory store of `bytes` bytes at synthetic address `addr`.
    #[inline(always)]
    fn store(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// `n` integer ALU instructions.
    #[inline(always)]
    fn int_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// `n` floating-point instructions.
    #[inline(always)]
    fn fp_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// One branch instruction, with its outcome.
    #[inline(always)]
    fn branch(&mut self, taken: bool) {
        let _ = taken;
    }

    /// Invocation of the function body `region` (instruction fetch).
    #[inline(always)]
    fn call(&mut self, region: CodeRegion) {
        let _ = region;
    }

    /// Marks a phase boundary named `name`. Events since the previous
    /// mark are credited to the previously named phase; repeated marks
    /// with the same name are no-ops, and repeated *names* merge (so a
    /// `spill` nested inside `map` accumulates across occurrences).
    /// Probes that don't attribute phases ignore the call.
    #[inline(always)]
    fn phase(&mut self, name: &str) {
        let _ = name;
    }

    /// A point-in-time copy of the probe's performance counters, if it
    /// keeps any. Span-instrumented code snapshots at span open, again
    /// at span close, and attaches the
    /// [`delta`](CounterSnapshot::delta_since) as span args.
    #[inline(always)]
    fn counters(&self) -> Option<CounterSnapshot> {
        None
    }

    /// Whether this probe actually records anything. Kernels may use this
    /// to skip building characterization-only structures.
    #[inline(always)]
    fn is_active(&self) -> bool {
        true
    }
}

/// The no-op probe: all events vanish at compile time.
///
/// # Example
///
/// ```
/// use bdb_archsim::{NullProbe, Probe};
/// let mut p = NullProbe;
/// p.load(0, 8);
/// p.int_ops(100);
/// assert!(!p.is_active());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn is_active(&self) -> bool {
        false
    }
}

/// A probe that tallies the instruction mix but simulates no hardware.
/// Useful in tests and for quick instruction-count estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    mix: InstructionMix,
    bytes: u64,
}

impl CountingProbe {
    /// The instruction mix observed so far.
    pub fn mix(&self) -> InstructionMix {
        self.mix
    }

    /// Total bytes requested by loads and stores.
    pub fn requested_bytes(&self) -> u64 {
        self.bytes
    }
}

impl Probe for CountingProbe {
    fn load(&mut self, _addr: u64, bytes: u32) {
        self.mix.loads += 1;
        self.bytes += bytes as u64;
    }

    fn store(&mut self, _addr: u64, bytes: u32) {
        self.mix.stores += 1;
        self.bytes += bytes as u64;
    }

    fn int_ops(&mut self, n: u64) {
        self.mix.int_ops += n;
    }

    fn fp_ops(&mut self, n: u64) {
        self.mix.fp_ops += n;
    }

    fn branch(&mut self, _taken: bool) {
        self.mix.branches += 1;
    }

    fn call(&mut self, region: CodeRegion) {
        self.mix.credit_code(region.instructions as u64);
    }
}

/// The full-simulation probe: feeds every event through a [`MachineSim`]
/// and owns the synthetic [`AddressSpace`] kernels allocate from.
///
/// # Example
///
/// ```
/// use bdb_archsim::{MachineConfig, SimProbe, Probe};
/// let mut p = SimProbe::new(MachineConfig::xeon_e5310());
/// let a = p.address_space_mut().alloc(1 << 16, "buf");
/// for i in 0..1000 {
///     p.load(a + i * 64, 8);
///     p.int_ops(2);
/// }
/// let report = p.finish();
/// assert_eq!(report.machine, "Xeon E5310");
/// assert!(report.l3.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SimProbe {
    machine: MachineSim,
    address_space: AddressSpace,
    phases: Vec<PhaseCounters>,
    current_phase: Option<String>,
    phase_mark: CounterSnapshot,
}

impl SimProbe {
    /// Builds a probe simulating `config`.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            machine: MachineSim::new(config),
            address_space: AddressSpace::new(),
            phases: Vec::new(),
            current_phase: None,
            phase_mark: CounterSnapshot::default(),
        }
    }

    /// The synthetic address space for data/code allocation.
    pub fn address_space_mut(&mut self) -> &mut AddressSpace {
        &mut self.address_space
    }

    /// Read access to the underlying machine simulator.
    pub fn machine(&self) -> &MachineSim {
        &self.machine
    }

    /// Finishes the run and produces the characterization report,
    /// including per-phase counters when the run marked phases (the
    /// tail since the last mark is credited to the last phase, so
    /// phase counters sum to the whole-run totals exactly).
    pub fn finish(mut self) -> CharacterizationReport {
        self.close_phase();
        let mut report = self.machine.report();
        report.phases = std::mem::take(&mut self.phases);
        report
    }

    /// Produces a report of the events so far without consuming the
    /// probe. The open phase, if any, is credited with its
    /// events-so-far in the returned report but stays open.
    pub fn snapshot(&self) -> CharacterizationReport {
        let mut report = self.machine.report();
        let mut phases = self.phases.clone();
        if let Some(name) = &self.current_phase {
            let delta = self.machine.snapshot_counters().delta_since(&self.phase_mark);
            Self::credit(&mut phases, name.clone(), delta);
        }
        report.phases = phases;
        report
    }

    /// Zeroes all statistics while keeping cache/TLB contents — call
    /// after a warm-up phase so reports reflect steady state, as the
    /// paper does ("we collect performance data after a ramp up
    /// period"). Accumulated phases are discarded and the phase mark
    /// restarts at zero.
    pub fn reset_stats(&mut self) {
        self.machine.reset_stats();
        self.phases.clear();
        self.current_phase = None;
        self.phase_mark = CounterSnapshot::default();
    }

    /// Credits everything since the last mark to the open phase and
    /// advances the mark.
    fn close_phase(&mut self) {
        if let Some(name) = self.current_phase.take() {
            let now = self.machine.snapshot_counters();
            let delta = now.delta_since(&self.phase_mark);
            Self::credit(&mut self.phases, name, delta);
            self.phase_mark = now;
        }
    }

    fn credit(phases: &mut Vec<PhaseCounters>, name: String, delta: CounterSnapshot) {
        if let Some(p) = phases.iter_mut().find(|p| p.name == name) {
            p.counters.merge(&delta);
        } else {
            phases.push(PhaseCounters { name, counters: delta });
        }
    }
}

impl Probe for SimProbe {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.machine.data_access(addr, bytes, false);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.machine.data_access(addr, bytes, true);
    }

    fn int_ops(&mut self, n: u64) {
        self.machine.int_ops(n);
    }

    fn fp_ops(&mut self, n: u64) {
        self.machine.fp_ops(n);
    }

    fn branch(&mut self, taken: bool) {
        self.machine.branch(taken);
    }

    fn call(&mut self, region: CodeRegion) {
        self.machine.ifetch(region);
    }

    fn phase(&mut self, name: &str) {
        if self.current_phase.as_deref() == Some(name) {
            return;
        }
        if self.current_phase.is_some() {
            self.close_phase();
        }
        // With no phase open the mark stays put, so events recorded
        // before the first named phase fold into that phase.
        self.current_phase = Some(name.to_owned());
    }

    fn counters(&self) -> Option<CounterSnapshot> {
        Some(self.machine.snapshot_counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::CodeRegion;

    #[test]
    fn counting_probe_tallies() {
        let mut p = CountingProbe::default();
        p.load(0, 8);
        p.store(8, 4);
        p.int_ops(5);
        p.fp_ops(2);
        p.branch(true);
        p.call(CodeRegion::new(0x400000, 128, 40));
        let m = p.mix();
        assert!(m.loads > 8, "explicit load + decomposed code loads");
        assert_eq!(p.requested_bytes(), 12, "code loads carry no data bytes");
        assert_eq!(m.total(), 10 + 40, "explicit events + region instructions");
    }

    #[test]
    fn null_probe_is_inactive() {
        assert!(!NullProbe.is_active());
        assert!(CountingProbe::default().is_active());
    }

    fn churn(p: &mut SimProbe, base: u64, n: u64) {
        for i in 0..n {
            p.load(base + i * 64, 8);
            p.int_ops(2);
            p.branch(i % 3 == 0);
        }
    }

    #[test]
    fn phase_counters_sum_to_whole_run_totals() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let base = p.address_space_mut().alloc(1 << 22, "x");
        churn(&mut p, base, 500); // pre-phase: folds into "map"
        p.phase("map");
        churn(&mut p, base, 2000);
        p.phase("spill");
        churn(&mut p, base + (1 << 20), 700);
        p.phase("map"); // back to map: merges with the earlier delta
        churn(&mut p, base, 300);
        p.phase("reduce");
        churn(&mut p, base + (2 << 20), 900); // tail: credited at finish
        let r = p.finish();
        assert_eq!(r.phases.len(), 3, "map/spill/reduce in first-appearance order");
        assert_eq!(r.phases[0].name, "map");
        assert_eq!(r.phases[1].name, "spill");
        assert_eq!(r.phases[2].name, "reduce");
        let mut sum = CounterSnapshot::default();
        for ph in &r.phases {
            sum.merge(&ph.counters);
        }
        assert_eq!(sum.mix, r.mix, "instruction mix attributes exactly");
        assert_eq!(sum.l1d, r.l1d.stats);
        assert_eq!(sum.l1i, r.l1i.stats);
        assert_eq!(sum.l2, r.l2.stats);
        assert_eq!(sum.l3.unwrap(), r.l3.unwrap().stats);
        assert_eq!(sum.dtlb, r.dtlb.stats);
        assert_eq!(sum.dram_bytes, r.dram_bytes);
        assert_eq!(sum.requested_bytes, r.requested_bytes);
        assert_eq!(sum.cycles, r.cycles, "cycle deltas telescope exactly");
        // "map" saw the pre-phase churn plus two separate intervals.
        assert_eq!(r.phases[0].counters.mix.loads, 2800);
    }

    #[test]
    fn repeated_same_phase_mark_is_noop() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5310());
        let base = p.address_space_mut().alloc(1 << 16, "x");
        p.phase("only");
        churn(&mut p, base, 100);
        p.phase("only");
        churn(&mut p, base, 100);
        let r = p.finish();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].counters.mix.loads, 200);
    }

    #[test]
    fn reset_stats_clears_phases_and_remarks() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let base = p.address_space_mut().alloc(1 << 16, "x");
        p.phase("warm");
        churn(&mut p, base, 400);
        p.reset_stats();
        p.phase("measured");
        churn(&mut p, base, 150);
        let r = p.finish();
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "measured");
        assert_eq!(r.phases[0].counters.mix.loads, 150);
        assert_eq!(r.mix.loads, 150);
    }

    #[test]
    fn snapshot_includes_open_phase_without_closing_it() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let base = p.address_space_mut().alloc(1 << 16, "x");
        p.phase("a");
        churn(&mut p, base, 50);
        let mid = p.snapshot();
        assert_eq!(mid.phases.len(), 1);
        assert_eq!(mid.phases[0].counters.mix.loads, 50);
        churn(&mut p, base, 50);
        let r = p.finish();
        assert_eq!(r.phases[0].counters.mix.loads, 100, "snapshot did not consume");
    }

    #[test]
    fn probe_counters_bridge() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        assert!(NullProbe.counters().is_none());
        let base = p.address_space_mut().alloc(1 << 16, "x");
        let before = p.counters().unwrap();
        churn(&mut p, base, 10);
        let after = p.counters().unwrap();
        let delta = after.delta_since(&before);
        assert_eq!(delta.mix.loads, 10);
        let named = delta.named_counters();
        assert!(named.iter().any(|&(k, v)| k == "counter.loads" && v == 10));
    }

    #[test]
    fn sim_probe_produces_report() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let base = p.address_space_mut().alloc(1 << 20, "x");
        for i in 0..10_000u64 {
            p.load(base + (i * 8) % (1 << 20), 8);
            p.int_ops(1);
        }
        let r = p.finish();
        assert_eq!(r.mix.loads, 10_000);
        assert!(r.l3.is_some());
        assert!(r.cycles > 0);
        assert!(r.mips() > 0.0);
    }
}
