//! The [`Probe`] trait and its implementations.
//!
//! Workload kernels are generic over `P: Probe`. With [`NullProbe`]
//! every call compiles to nothing, giving native-speed throughput runs;
//! with [`SimProbe`] every call drives the machine model.

use crate::layout::{AddressSpace, CodeRegion};
use crate::machine::{MachineConfig, MachineSim};
use crate::metrics::{CharacterizationReport, InstructionMix};

/// Receiver of micro-architectural events emitted by instrumented kernels.
///
/// All methods have empty default bodies so probe implementations only
/// override what they observe; [`NullProbe`] overrides nothing.
pub trait Probe {
    /// A memory load of `bytes` bytes at synthetic address `addr`.
    #[inline(always)]
    fn load(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// A memory store of `bytes` bytes at synthetic address `addr`.
    #[inline(always)]
    fn store(&mut self, addr: u64, bytes: u32) {
        let _ = (addr, bytes);
    }

    /// `n` integer ALU instructions.
    #[inline(always)]
    fn int_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// `n` floating-point instructions.
    #[inline(always)]
    fn fp_ops(&mut self, n: u64) {
        let _ = n;
    }

    /// One branch instruction, with its outcome.
    #[inline(always)]
    fn branch(&mut self, taken: bool) {
        let _ = taken;
    }

    /// Invocation of the function body `region` (instruction fetch).
    #[inline(always)]
    fn call(&mut self, region: CodeRegion) {
        let _ = region;
    }

    /// Whether this probe actually records anything. Kernels may use this
    /// to skip building characterization-only structures.
    #[inline(always)]
    fn is_active(&self) -> bool {
        true
    }
}

/// The no-op probe: all events vanish at compile time.
///
/// # Example
///
/// ```
/// use bdb_archsim::{NullProbe, Probe};
/// let mut p = NullProbe;
/// p.load(0, 8);
/// p.int_ops(100);
/// assert!(!p.is_active());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn is_active(&self) -> bool {
        false
    }
}

/// A probe that tallies the instruction mix but simulates no hardware.
/// Useful in tests and for quick instruction-count estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    mix: InstructionMix,
    bytes: u64,
}

impl CountingProbe {
    /// The instruction mix observed so far.
    pub fn mix(&self) -> InstructionMix {
        self.mix
    }

    /// Total bytes requested by loads and stores.
    pub fn requested_bytes(&self) -> u64 {
        self.bytes
    }
}

impl Probe for CountingProbe {
    fn load(&mut self, _addr: u64, bytes: u32) {
        self.mix.loads += 1;
        self.bytes += bytes as u64;
    }

    fn store(&mut self, _addr: u64, bytes: u32) {
        self.mix.stores += 1;
        self.bytes += bytes as u64;
    }

    fn int_ops(&mut self, n: u64) {
        self.mix.int_ops += n;
    }

    fn fp_ops(&mut self, n: u64) {
        self.mix.fp_ops += n;
    }

    fn branch(&mut self, _taken: bool) {
        self.mix.branches += 1;
    }

    fn call(&mut self, region: CodeRegion) {
        self.mix.credit_code(region.instructions as u64);
    }
}

/// The full-simulation probe: feeds every event through a [`MachineSim`]
/// and owns the synthetic [`AddressSpace`] kernels allocate from.
///
/// # Example
///
/// ```
/// use bdb_archsim::{MachineConfig, SimProbe, Probe};
/// let mut p = SimProbe::new(MachineConfig::xeon_e5310());
/// let a = p.address_space_mut().alloc(1 << 16, "buf");
/// for i in 0..1000 {
///     p.load(a + i * 64, 8);
///     p.int_ops(2);
/// }
/// let report = p.finish();
/// assert_eq!(report.machine, "Xeon E5310");
/// assert!(report.l3.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SimProbe {
    machine: MachineSim,
    address_space: AddressSpace,
}

impl SimProbe {
    /// Builds a probe simulating `config`.
    pub fn new(config: MachineConfig) -> Self {
        Self { machine: MachineSim::new(config), address_space: AddressSpace::new() }
    }

    /// The synthetic address space for data/code allocation.
    pub fn address_space_mut(&mut self) -> &mut AddressSpace {
        &mut self.address_space
    }

    /// Read access to the underlying machine simulator.
    pub fn machine(&self) -> &MachineSim {
        &self.machine
    }

    /// Finishes the run and produces the characterization report.
    pub fn finish(self) -> CharacterizationReport {
        self.machine.report()
    }

    /// Produces a report of the events so far without consuming the probe.
    pub fn snapshot(&self) -> CharacterizationReport {
        self.machine.report()
    }

    /// Zeroes all statistics while keeping cache/TLB contents — call
    /// after a warm-up phase so reports reflect steady state, as the
    /// paper does ("we collect performance data after a ramp up
    /// period").
    pub fn reset_stats(&mut self) {
        self.machine.reset_stats();
    }
}

impl Probe for SimProbe {
    fn load(&mut self, addr: u64, bytes: u32) {
        self.machine.data_access(addr, bytes, false);
    }

    fn store(&mut self, addr: u64, bytes: u32) {
        self.machine.data_access(addr, bytes, true);
    }

    fn int_ops(&mut self, n: u64) {
        self.machine.int_ops(n);
    }

    fn fp_ops(&mut self, n: u64) {
        self.machine.fp_ops(n);
    }

    fn branch(&mut self, taken: bool) {
        self.machine.branch(taken);
    }

    fn call(&mut self, region: CodeRegion) {
        self.machine.ifetch(region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::CodeRegion;

    #[test]
    fn counting_probe_tallies() {
        let mut p = CountingProbe::default();
        p.load(0, 8);
        p.store(8, 4);
        p.int_ops(5);
        p.fp_ops(2);
        p.branch(true);
        p.call(CodeRegion::new(0x400000, 128, 40));
        let m = p.mix();
        assert!(m.loads >= 1 + 8, "explicit load + decomposed code loads");
        assert_eq!(p.requested_bytes(), 12, "code loads carry no data bytes");
        assert_eq!(m.total(), 10 + 40, "explicit events + region instructions");
    }

    #[test]
    fn null_probe_is_inactive() {
        assert!(!NullProbe.is_active());
        assert!(CountingProbe::default().is_active());
    }

    #[test]
    fn sim_probe_produces_report() {
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let base = p.address_space_mut().alloc(1 << 20, "x");
        for i in 0..10_000u64 {
            p.load(base + (i * 8) % (1 << 20), 8);
            p.int_ops(1);
        }
        let r = p.finish();
        assert_eq!(r.mix.loads, 10_000);
        assert!(r.l3.is_some());
        assert!(r.cycles > 0);
        assert!(r.mips() > 0.0);
    }
}
