//! A simple additive pipeline timing model.
//!
//! `cycles = instructions × CPI_base + Σ level_misses × level_penalty`.
//! This is the standard first-order model; it is sufficient to reproduce
//! the *trends* in the paper's Figure 3-1 (MIPS versus data volume),
//! where MIPS moves because the miss profile moves.

use serde::{Deserialize, Serialize};

/// Latency parameters for the additive timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Base cycles per instruction with a perfect memory system.
    pub cpi_base: f64,
    /// Extra cycles for an L1 (I or D) miss that hits in L2.
    pub l2_hit_penalty: f64,
    /// Extra cycles for an L2 miss that hits in L3.
    pub l3_hit_penalty: f64,
    /// Extra cycles for a last-level-cache miss (DRAM access).
    pub dram_penalty: f64,
    /// Extra cycles for a TLB miss (page walk).
    pub tlb_penalty: f64,
    /// Extra cycles for a mispredicted branch.
    pub branch_mispredict_penalty: f64,
}

impl TimingModel {
    /// Parameters approximating a Nehalem/Westmere-class core
    /// (the Xeon E5645 of the paper).
    pub fn westmere() -> Self {
        Self {
            cpi_base: 0.35,
            l2_hit_penalty: 10.0,
            l3_hit_penalty: 35.0,
            dram_penalty: 180.0,
            tlb_penalty: 30.0,
            branch_mispredict_penalty: 15.0,
        }
    }

    /// Parameters approximating a Core-class machine without L3
    /// (the Xeon E5310): L2 is the last level.
    pub fn clovertown() -> Self {
        Self {
            cpi_base: 0.5,
            l2_hit_penalty: 14.0,
            l3_hit_penalty: 0.0,
            dram_penalty: 220.0,
            tlb_penalty: 35.0,
            branch_mispredict_penalty: 13.0,
        }
    }

    /// Estimates total cycles from event counts.
    #[allow(clippy::too_many_arguments)]
    pub fn cycles(
        &self,
        instructions: u64,
        l1_misses_hitting_l2: u64,
        l2_misses_hitting_l3: u64,
        llc_misses: u64,
        tlb_misses: u64,
        branch_mispredicts: u64,
    ) -> u64 {
        let c = instructions as f64 * self.cpi_base
            + l1_misses_hitting_l2 as f64 * self.l2_hit_penalty
            + l2_misses_hitting_l3 as f64 * self.l3_hit_penalty
            + llc_misses as f64 * self.dram_penalty
            + tlb_misses as f64 * self.tlb_penalty
            + branch_mispredicts as f64 * self.branch_mispredict_penalty;
        c.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_memory_is_base_cpi() {
        let t = TimingModel::westmere();
        let cycles = t.cycles(1_000_000, 0, 0, 0, 0, 0);
        assert_eq!(cycles, 350_000);
    }

    #[test]
    fn misses_add_cycles() {
        let t = TimingModel::westmere();
        let base = t.cycles(1000, 0, 0, 0, 0, 0);
        let with_misses = t.cycles(1000, 10, 5, 2, 1, 3);
        let expected_extra = 10.0 * 10.0 + 5.0 * 35.0 + 2.0 * 180.0 + 30.0 + 3.0 * 15.0;
        assert_eq!(with_misses - base, expected_extra as u64);
    }

    #[test]
    fn clovertown_has_no_l3_penalty() {
        let t = TimingModel::clovertown();
        assert_eq!(t.l3_hit_penalty, 0.0);
        assert!(t.dram_penalty > TimingModel::westmere().dram_penalty);
    }
}
