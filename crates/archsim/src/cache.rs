//! Set-associative cache simulation with true-LRU replacement.
//!
//! The model is deliberately simple — physically indexed, tag-only (no
//! data array), write-allocate, and with statistics sufficient to compute
//! the misses-per-kilo-instruction (MPKI) numbers the paper reports. A
//! single [`Cache`] simulates one level; [`crate::MachineSim`] wires
//! levels into a hierarchy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use bdb_archsim::CacheConfig;
/// let l1 = CacheConfig::new("L1D", 32 * 1024, 8, 64);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable level name, e.g. `"L1D"`.
    pub name: String,
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Cache line size in bytes; must be a power of two.
    pub line_size: usize,
}

impl CacheConfig {
    /// Creates a new cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not divisible by `associativity *
    /// line_size`, or if `line_size` is not a power of two, or any
    /// argument is zero.
    pub fn new(name: &str, capacity: usize, associativity: usize, line_size: usize) -> Self {
        assert!(capacity > 0 && associativity > 0 && line_size > 0);
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        assert_eq!(
            capacity % (associativity * line_size),
            0,
            "capacity must be divisible by associativity * line_size"
        );
        Self { name: name.to_owned(), capacity, associativity, line_size }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.capacity / (self.associativity * self.line_size)
    }
}

/// Access counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Lookups that hit. Saturates at zero if `misses` somehow exceeds
    /// `accesses` (e.g. stats assembled by hand or from a delta), rather
    /// than panicking in release-mode wraparound.
    pub fn hits(&self) -> u64 {
        self.accesses.saturating_sub(self.misses)
    }

    /// Counter increase since `earlier` (field-wise, saturating at zero).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(earlier.accesses),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per 1000 instructions, given a total instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            self.miss_ratio() * 100.0
        )
    }
}

/// One set: tags ordered most-recently-used first.
#[derive(Debug, Clone, Default)]
struct Set {
    /// MRU-first tag list, length ≤ associativity.
    lru: Vec<u64>,
}

/// A single set-associative, true-LRU cache level.
///
/// Addresses are byte addresses; the cache operates on aligned lines.
///
/// # Example
///
/// ```
/// use bdb_archsim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new("L1D", 1024, 2, 64));
/// assert!(!c.access(0));      // cold miss
/// assert!(c.access(8));       // same line: hit
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    stats: CacheStats,
    num_sets: u64,
    line_shift: u32,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            num_sets: sets as u64,
            line_shift: config.line_size.trailing_zeros(),
            sets: vec![Set::default(); sets],
            stats: CacheStats::default(),
            config,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.config.line_size
    }

    /// Looks up the line containing `addr`, updating LRU state and
    /// statistics. Returns `true` on a hit. On a miss the line is filled
    /// (write-allocate), evicting the LRU way if the set is full.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        self.stats.accesses += 1;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.lru.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.lru.remove(pos);
            set.lru.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            set.lru.insert(0, tag);
            if set.lru.len() > self.config.associativity {
                set.lru.pop();
            }
            false
        }
    }

    /// Accesses every line overlapped by `[addr, addr + bytes)`, returning
    /// the number of lines that missed.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        debug_assert!(bytes > 0);
        let line = self.config.line_size as u64;
        let first = addr & !(line - 1);
        let last = (addr + bytes - 1) & !(line - 1);
        let mut misses = 0;
        let mut a = first;
        loop {
            if !self.access(a) {
                misses += 1;
            }
            if a == last {
                break;
            }
            a += line;
        }
        misses
    }

    /// Zeroes the statistics while keeping cache contents (for
    /// ramp-up/warm-measurement protocols).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all lines and zeroes the statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.lru.clear();
        }
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines (for tests and debugging).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.lru.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B
        Cache::new(CacheConfig::new("T", 512, 2, 64))
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_size(), 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_geometry_panics() {
        CacheConfig::new("bad", 1000, 3, 64);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x7f)); // same line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines whose line-index % 4 == 0: addresses 0, 1024, 2048...
        let a = 0u64;
        let b = 4 * 64; // set 0, different tag
        let d = 8 * 64; // set 0, third tag
        assert!(!c.access(a));
        assert!(!c.access(b));
        // Touch a again so b becomes LRU.
        assert!(c.access(a));
        // Insert d: evicts b.
        assert!(!c.access(d));
        assert!(c.access(a), "a should survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = tiny();
        let misses = c.access_range(60, 8); // crosses the 64B boundary
        assert_eq!(misses, 2);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        let mut c = Cache::new(CacheConfig::new("L", 4096, 4, 64));
        // 32 lines working set < 64-line capacity.
        for round in 0..10 {
            for i in 0..32u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(hit);
                }
            }
        }
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        // Direct-ish: 2-way, 4 sets = 8 lines; stream 16 distinct lines repeatedly.
        let mut c = tiny();
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        // Cyclic access over a working set 2x capacity with LRU => ~100% miss.
        assert_eq!(c.stats().misses, c.stats().accesses);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn stats_arithmetic() {
        let s = CacheStats { accesses: 1000, misses: 25 };
        assert_eq!(s.hits(), 975);
        assert!((s.miss_ratio() - 0.025).abs() < 1e-12);
        assert!((s.mpki(10_000) - 2.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().mpki(0), 0.0);
    }

    #[test]
    fn hits_saturate_instead_of_wrapping() {
        // Inconsistent by construction — hits() must not underflow.
        let s = CacheStats { accesses: 10, misses: 25 };
        assert_eq!(s.hits(), 0);
    }

    #[test]
    fn stats_edge_cases() {
        let empty = CacheStats::default();
        assert_eq!(empty.hits(), 0);
        assert_eq!(empty.miss_ratio(), 0.0);
        assert_eq!(empty.mpki(0), 0.0);
        assert_eq!(empty.mpki(1_000_000), 0.0);
        let all_miss = CacheStats { accesses: 7, misses: 7 };
        assert_eq!(all_miss.hits(), 0);
        assert!((all_miss.miss_ratio() - 1.0).abs() < 1e-12);
        // mpki with zero instructions must stay zero even with misses.
        assert_eq!(all_miss.mpki(0), 0.0);
    }

    #[test]
    fn stats_delta_and_merge() {
        let earlier = CacheStats { accesses: 100, misses: 10 };
        let later = CacheStats { accesses: 150, misses: 12 };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta, CacheStats { accesses: 50, misses: 2 });
        // Reversed order saturates to zero instead of wrapping.
        assert_eq!(earlier.delta_since(&later), CacheStats::default());
        let mut acc = earlier;
        acc.merge(&delta);
        assert_eq!(acc, later);
    }
}
