//! The full store: WAL + memtable + SSTables + compaction.

use crate::memtable::{Entry, Memtable};
use crate::sstable::SsTable;
use crate::trace::StoreTraceModel;
use crate::wal::{WalOp, WriteAheadLog};
use bdb_archsim::layout::splitmix64;
use bdb_archsim::{NullProbe, Probe};
use bdb_faults::FaultPlan;
use bdb_telemetry::{span, Counter, MetricsRegistry, SpanRecorder};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Tuning knobs for [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Flush the memtable to an SSTable once it holds this many bytes.
    pub memtable_flush_bytes: usize,
    /// Run a full compaction when the number of SSTables exceeds this.
    pub max_tables: usize,
    /// Consult bloom filters on the read path (disable for ablation
    /// studies of the filters' value).
    pub use_bloom: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { memtable_flush_bytes: 8 << 20, max_tables: 8, use_bloom: true }
    }
}

/// Operation counters for one store instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Point lookups served.
    pub gets: u64,
    /// Mutations applied.
    pub puts: u64,
    /// Deletions applied.
    pub deletes: u64,
    /// Range scans served.
    pub scans: u64,
    /// SSTable lookups skipped thanks to a negative bloom filter.
    pub bloom_skips: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Full compactions run.
    pub compactions: u64,
}

/// Counter handles resolved once when a registry is attached — the
/// read path is hot, so per-get registry lookups are avoided.
#[derive(Debug)]
struct StoreCounters {
    bloom_hits: Counter,
    bloom_misses: Counter,
    wal_appends: Counter,
    flushes: Counter,
    compactions: Counter,
}

/// An LSM-tree store rooted at a directory.
///
/// See the crate docs for the architecture; [`Store::open`] recovers
/// state from the WAL and any SSTables found in the directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    wal: WriteAheadLog,
    memtable: Memtable,
    /// Newest first.
    tables: Vec<SsTable>,
    next_table_id: u64,
    stats: StoreStats,
    trace: Option<StoreTraceModel>,
    telemetry: SpanRecorder,
    counters: Option<StoreCounters>,
    faults: FaultPlan,
}

impl Store {
    /// Opens (or creates) a store in `dir` with default configuration.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from recovery.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// Opens (or creates) a store with explicit configuration, replaying
    /// the WAL and loading existing SSTables (newest first).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from recovery.
    pub fn open_with(dir: &Path, config: StoreConfig) -> std::io::Result<Self> {
        Self::open_with_faults(dir, config, FaultPlan::disabled())
    }

    /// [`Store::open_with`] with fault injection on the write paths:
    /// WAL appends pass through [`crate::sites::WAL_APPEND`], flush and
    /// compaction SSTable builds through [`crate::sites::FLUSH_WRITE`]
    /// and [`crate::sites::COMPACTION_WRITE`].
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from recovery.
    pub fn open_with_faults(
        dir: &Path,
        config: StoreConfig,
        faults: FaultPlan,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("wal.log");
        let mut memtable = Memtable::new();
        for op in WriteAheadLog::replay(&wal_path)? {
            match op {
                WalOp::Put(k, v) => {
                    memtable.put(k, v);
                }
                WalOp::Delete(k) => {
                    memtable.delete(k);
                }
            }
        }
        let wal = WriteAheadLog::open_with(&wal_path, faults.clone())?;
        Self::remove_stray_tmp(dir)?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name.strip_prefix("table-").and_then(|s| s.strip_suffix(".sst")) {
                if let Ok(id) = id.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable_by(|a, b| b.cmp(a)); // newest (highest id) first
        let mut tables = Vec::with_capacity(ids.len());
        for id in &ids {
            tables.push(SsTable::open(&table_path(dir, *id))?);
        }
        let next_table_id = ids.first().map_or(0, |&m| m + 1);
        Ok(Self {
            dir: dir.to_owned(),
            config,
            wal,
            memtable,
            tables,
            next_table_id,
            stats: StoreStats::default(),
            trace: None,
            telemetry: SpanRecorder::disabled(),
            counters: None,
            faults,
        })
    }

    /// Removes stray `*.tmp` files in `dir` — tables a crashed flush or
    /// compaction never published. [`Store::open_with_faults`] runs this
    /// during recovery; the cluster layer also runs it on a replica
    /// directory after a failed WAL-ship before the node rejoins, so a
    /// half-shipped table can never be mistaken for a published one.
    /// Returns the number of files removed.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors (a missing directory is fine: 0).
    pub fn remove_stray_tmp(dir: &Path) -> std::io::Result<usize> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Logical WAL position: bytes of whole records durably appended
    /// since open (see [`WriteAheadLog::offset`]). The replication
    /// layer records this per replica after each acknowledged ship and
    /// promotes the replica with the highest offset on failover.
    pub fn wal_offset(&self) -> u64 {
        self.wal.offset()
    }

    /// Enables read/write-path instrumentation for `*_with` operations.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(StoreTraceModel::new());
    }

    /// Attaches a span recorder: WAL appends, memtable flushes and
    /// compactions become spans on it (default: disabled, one branch
    /// per maintenance event).
    pub fn set_telemetry(&mut self, recorder: SpanRecorder) {
        self.telemetry = recorder;
    }

    /// Attaches a metrics registry: bloom-filter hit/miss and
    /// maintenance counters are published under `kvstore.*`.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.counters = Some(StoreCounters {
            bloom_hits: registry.counter("kvstore.bloom_hits"),
            bloom_misses: registry.counter("kvstore.bloom_misses"),
            wal_appends: registry.counter("kvstore.wal_appends"),
            flushes: registry.counter("kvstore.flushes"),
            compactions: registry.counter("kvstore.compactions"),
        });
    }

    /// Pre-touches the modeled server code (ramp-up); no-op without
    /// tracing.
    pub fn warm_trace<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        if let Some(t) = self.trace.as_mut() {
            t.warm(probe);
        }
    }

    /// Operation counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Number of SSTables currently live.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Inserts or overwrites a row.
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> std::io::Result<()> {
        self.put_with(key, value, &mut NullProbe)
    }

    /// Instrumented [`Store::put`].
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors.
    pub fn put_with<P: Probe + ?Sized>(
        &mut self,
        key: Vec<u8>,
        value: Vec<u8>,
        probe: &mut P,
    ) -> std::io::Result<()> {
        self.stats.puts += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_op(probe);
            t.wal_append(probe, key.len() + value.len());
            t.memtable_walk(probe, hash_key(&key), self.memtable.len(), true);
        }
        {
            let _wal =
                span!(self.telemetry, "kvstore", "wal-append", bytes = key.len() + value.len());
            self.wal.log_put(&key, &value)?;
        }
        if let Some(c) = &self.counters {
            c.wal_appends.inc();
        }
        self.memtable.put(key, value);
        self.maybe_flush(probe)
    }

    /// Deletes a row (writes a tombstone).
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors.
    pub fn delete(&mut self, key: &[u8]) -> std::io::Result<()> {
        self.delete_with(key, &mut NullProbe)
    }

    /// Instrumented [`Store::delete`].
    ///
    /// # Errors
    ///
    /// Propagates WAL/flush I/O errors.
    pub fn delete_with<P: Probe + ?Sized>(
        &mut self,
        key: &[u8],
        probe: &mut P,
    ) -> std::io::Result<()> {
        self.stats.deletes += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_op(probe);
            t.wal_append(probe, key.len());
            t.memtable_walk(probe, hash_key(key), self.memtable.len(), true);
        }
        {
            let _wal = span!(self.telemetry, "kvstore", "wal-append", bytes = key.len());
            self.wal.log_delete(key)?;
        }
        if let Some(c) = &self.counters {
            c.wal_appends.inc();
        }
        self.memtable.delete(key.to_vec());
        self.maybe_flush(probe)
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Propagates SSTable I/O errors.
    pub fn get(&mut self, key: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        self.get_with(key, &mut NullProbe)
    }

    /// Instrumented [`Store::get`]: memtable first, then tables newest to
    /// oldest, honoring bloom filters and tombstones.
    ///
    /// # Errors
    ///
    /// Propagates SSTable I/O errors.
    pub fn get_with<P: Probe + ?Sized>(
        &mut self,
        key: &[u8],
        probe: &mut P,
    ) -> std::io::Result<Option<Vec<u8>>> {
        self.stats.gets += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_op(probe);
            t.memtable_walk(probe, hash_key(key), self.memtable.len(), false);
        }
        if let Some(entry) = self.memtable.get(key) {
            return Ok(entry.value().map(<[u8]>::to_vec));
        }
        for (i, table) in self.tables.iter().enumerate() {
            let table_id = self.next_table_id.wrapping_sub(i as u64);
            if self.config.use_bloom {
                if let Some(t) = self.trace.as_mut() {
                    t.bloom_probe(probe, table_id, &table.bloom().probe_bits(key));
                }
                if !table.may_contain(key) {
                    self.stats.bloom_skips += 1;
                    if let Some(c) = &self.counters {
                        c.bloom_misses.inc();
                    }
                    continue;
                }
                if let Some(c) = &self.counters {
                    c.bloom_hits.inc();
                }
            }
            if let Some(t) = self.trace.as_mut() {
                t.index_search(probe, table_id, table.block_count());
            }
            if let Some(entry) = table.get(key)? {
                if let (Some(t), Some(b)) = (self.trace.as_mut(), table.block_for(key)) {
                    t.block_read(probe, table_id, b, 4096);
                }
                return Ok(entry.value().map(<[u8]>::to_vec));
            }
        }
        Ok(None)
    }

    /// Range scan over `[start, end)`, newest version per key, tombstones
    /// elided. Returns key/value pairs in key order.
    ///
    /// # Errors
    ///
    /// Propagates SSTable I/O errors.
    pub fn scan(&mut self, start: &[u8], end: &[u8]) -> std::io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_with(start, end, &mut NullProbe)
    }

    /// Instrumented [`Store::scan`].
    ///
    /// # Errors
    ///
    /// Propagates SSTable I/O errors.
    pub fn scan_with<P: Probe + ?Sized>(
        &mut self,
        start: &[u8],
        end: &[u8],
        probe: &mut P,
    ) -> std::io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.stats.scans += 1;
        if let Some(t) = self.trace.as_mut() {
            t.on_op(probe);
        }
        // Oldest-to-newest overlay: later inserts win.
        let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
        for (i, table) in self.tables.iter().enumerate().rev() {
            let table_id = self.next_table_id.wrapping_sub(i as u64);
            let rows = table.scan(start, end)?;
            if let Some(t) = self.trace.as_mut() {
                t.index_search(probe, table_id, table.block_count());
                t.block_read(probe, table_id, hash_key(start) as usize, rows.len() * 64);
            }
            for (k, e) in rows {
                merged.insert(k, e);
            }
        }
        for (k, e) in self.memtable.range(start, end) {
            if self.trace.is_some() {
                probe.load(splitmix64(hash_key(k)) | 1 << 45, 64);
            }
            merged.insert(k.to_vec(), e.clone());
        }
        Ok(merged.into_iter().filter_map(|(k, e)| e.value().map(|v| (k, v.to_vec()))).collect())
    }

    /// Forces a memtable flush (used by tests and shutdown paths).
    ///
    /// # Errors
    ///
    /// Propagates SSTable build / WAL truncate errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.flush_with(&mut NullProbe)
    }

    fn maybe_flush<P: Probe + ?Sized>(&mut self, probe: &mut P) -> std::io::Result<()> {
        if self.memtable.bytes() >= self.config.memtable_flush_bytes {
            self.flush_with(probe)?;
        }
        Ok(())
    }

    fn flush_with<P: Probe + ?Sized>(&mut self, probe: &mut P) -> std::io::Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let flush_span =
            span!(self.telemetry, "kvstore", "memtable-flush", entries = self.memtable.len());
        let entries = self.memtable.drain_sorted();
        if let Some(t) = self.trace.as_mut() {
            // Flush reads the whole memtable arena once.
            t.block_read(probe, self.next_table_id, 0, entries.len() * 64);
        }
        let id = self.next_table_id;
        let table = match SsTable::build_with(
            &table_path(&self.dir, id),
            &entries,
            &self.faults,
            crate::sites::FLUSH_WRITE,
        ) {
            Ok(table) => table,
            Err(e) => {
                // The build published nothing; put the drained entries
                // back so every acknowledged write stays readable, and
                // leave the WAL untruncated so they also survive a
                // restart. The flush can simply be retried.
                for (k, entry) in entries {
                    match entry {
                        Entry::Value(v) => self.memtable.put(k, v),
                        Entry::Tombstone => self.memtable.delete(k),
                    };
                }
                if bdb_faults::is_injected(&e) {
                    self.faults.note_recovered(crate::sites::FLUSH_WRITE);
                }
                return Err(e);
            }
        };
        self.next_table_id = id + 1;
        self.tables.insert(0, table);
        self.wal.truncate()?;
        self.stats.flushes += 1;
        if let Some(c) = &self.counters {
            c.flushes.inc();
        }
        drop(flush_span); // release the recorder borrow before compacting
        if self.tables.len() > self.config.max_tables {
            self.compact()?;
        }
        Ok(())
    }

    /// Full compaction: merges every table into one, dropping shadowed
    /// versions and tombstones.
    ///
    /// # Errors
    ///
    /// Propagates SSTable I/O errors.
    pub fn compact(&mut self) -> std::io::Result<()> {
        if self.tables.len() <= 1 {
            return Ok(());
        }
        let _compact = span!(self.telemetry, "kvstore", "compaction", tables = self.tables.len());
        // Oldest-to-newest overlay merge.
        let mut merged: BTreeMap<Vec<u8>, Entry> = BTreeMap::new();
        for table in self.tables.iter().rev() {
            for (k, e) in table.iter_all()? {
                merged.insert(k, e);
            }
        }
        let entries: Vec<(Vec<u8>, Entry)> =
            merged.into_iter().filter(|(_, e)| matches!(e, Entry::Value(_))).collect();
        let id = self.next_table_id;
        let new_table = match SsTable::build_with(
            &table_path(&self.dir, id),
            &entries,
            &self.faults,
            crate::sites::COMPACTION_WRITE,
        ) {
            Ok(table) => table,
            Err(e) => {
                // Nothing was published and no input table was touched:
                // the store keeps serving from the old tables and the
                // compaction can be retried.
                if bdb_faults::is_injected(&e) {
                    self.faults.note_recovered(crate::sites::COMPACTION_WRITE);
                }
                return Err(e);
            }
        };
        self.next_table_id = id + 1;
        for old in self.tables.drain(..) {
            old.remove_file()?;
        }
        self.tables.push(new_table);
        self.stats.compactions += 1;
        if let Some(c) = &self.counters {
            c.compactions.inc();
        }
        Ok(())
    }
}

fn table_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("table-{id:012}.sst"))
}

fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(i: u32) -> Vec<u8> {
        format!("row{i:08}").into_bytes()
    }

    #[test]
    fn put_get_delete() {
        let dir = tmpdir("basic");
        let mut s = Store::open(&dir).unwrap();
        s.put(key(1), b"v1".to_vec()).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), Some(b"v1".to_vec()));
        s.put(key(1), b"v2".to_vec()).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), Some(b"v2".to_vec()));
        s.delete(&key(1)).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), None);
        assert_eq!(s.get(&key(2)).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_through_sstables_and_tombstones() {
        let dir = tmpdir("sst");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() },
        )
        .unwrap();
        for i in 0..500 {
            s.put(key(i), format!("val{i}").into_bytes()).unwrap();
        }
        s.flush().unwrap();
        s.delete(&key(10)).unwrap();
        s.flush().unwrap();
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.get(&key(42)).unwrap(), Some(b"val42".to_vec()));
        assert_eq!(s.get(&key(10)).unwrap(), None, "tombstone in newer table wins");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_replays_wal() {
        let dir = tmpdir("recover");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(key(1), b"persisted".to_vec()).unwrap();
            s.put(key(2), b"also".to_vec()).unwrap();
            s.delete(&key(2)).unwrap();
            // No flush: data only in WAL.
        }
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.get(&key(1)).unwrap(), Some(b"persisted".to_vec()));
        assert_eq!(s.get(&key(2)).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_loads_sstables() {
        let dir = tmpdir("recover-sst");
        {
            let mut s = Store::open(&dir).unwrap();
            for i in 0..100 {
                s.put(key(i), format!("v{i}").into_bytes()).unwrap();
            }
            s.flush().unwrap();
        }
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.table_count(), 1);
        assert_eq!(s.get(&key(50)).unwrap(), Some(b"v50".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let dir = tmpdir("autoflush");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 4096, max_tables: 100, ..Default::default() },
        )
        .unwrap();
        for i in 0..500 {
            s.put(key(i), vec![b'x'; 64]).unwrap();
        }
        assert!(s.stats().flushes > 0, "should have auto-flushed");
        assert!(s.table_count() > 0);
        for i in (0..500).step_by(71) {
            assert_eq!(s.get(&key(i)).unwrap(), Some(vec![b'x'; 64]));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_merges_and_drops_tombstones() {
        let dir = tmpdir("compact");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 3, ..Default::default() },
        )
        .unwrap();
        for round in 0..4 {
            for i in 0..100 {
                s.put(key(i), format!("r{round}-{i}").into_bytes()).unwrap();
            }
            s.delete(&key(round)).unwrap();
            s.flush().unwrap();
        }
        assert!(s.stats().compactions > 0);
        assert_eq!(s.table_count(), 1, "full compaction leaves one table");
        // Newest round wins; deleted keys of the last round stay deleted.
        assert_eq!(s.get(&key(50)).unwrap(), Some(b"r3-50".to_vec()));
        assert_eq!(s.get(&key(3)).unwrap(), None);
        // Older deletions were overwritten by later rounds.
        assert_eq!(s.get(&key(0)).unwrap(), Some(b"r3-0".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_merges_all_layers() {
        let dir = tmpdir("scan");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() },
        )
        .unwrap();
        for i in 0..50 {
            s.put(key(i), b"old".to_vec()).unwrap();
        }
        s.flush().unwrap();
        s.put(key(10), b"new".to_vec()).unwrap();
        s.delete(&key(11)).unwrap();
        let rows = s.scan(&key(9), &key(13)).unwrap();
        assert_eq!(
            rows,
            vec![(key(9), b"old".to_vec()), (key(10), b"new".to_vec()), (key(12), b"old".to_vec()),]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bloom_filters_skip_absent_keys() {
        let dir = tmpdir("bloom");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() },
        )
        .unwrap();
        for i in 0..200 {
            s.put(key(i), b"v".to_vec()).unwrap();
        }
        s.flush().unwrap();
        for i in 10_000..10_200 {
            assert_eq!(s.get(&key(i)).unwrap(), None);
        }
        assert!(s.stats().bloom_skips > 150, "bloom skips: {}", s.stats().bloom_skips);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_spans_and_counters_cover_lsm_maintenance() {
        let dir = tmpdir("telemetry");
        let mut s = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 4096, max_tables: 2, ..Default::default() },
        )
        .unwrap();
        let telemetry = SpanRecorder::enabled();
        let metrics = MetricsRegistry::new();
        s.set_telemetry(telemetry.clone());
        s.set_metrics(&metrics);
        for i in 0..500 {
            s.put(key(i), vec![b'x'; 64]).unwrap();
        }
        for i in 10_000..10_100 {
            assert_eq!(s.get(&key(i)).unwrap(), None);
        }
        let events = telemetry.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("wal-append"), 500, "one span per logged mutation");
        assert!(count("memtable-flush") > 0, "flush threshold crossed");
        assert!(count("compaction") > 0, "max_tables=2 forces compaction");
        assert_eq!(metrics.counter("kvstore.wal_appends").get(), 500);
        assert_eq!(metrics.counter("kvstore.flushes").get(), s.stats().flushes);
        assert_eq!(metrics.counter("kvstore.compactions").get(), s.stats().compactions);
        assert_eq!(metrics.counter("kvstore.bloom_misses").get(), s.stats().bloom_skips);
        assert!(metrics.counter("kvstore.bloom_misses").get() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_ops_report_events() {
        use bdb_archsim::CountingProbe;
        let dir = tmpdir("traced");
        let mut s = Store::open(&dir).unwrap();
        s.enable_tracing();
        let mut probe = CountingProbe::default();
        s.put_with(key(1), b"v".to_vec(), &mut probe).unwrap();
        let _ = s.get_with(&key(1), &mut probe).unwrap();
        let mix = probe.mix();
        assert!(mix.other > 0, "server stack instructions recorded");
        assert!(mix.stores > 0 && mix.loads > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
