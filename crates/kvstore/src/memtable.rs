//! The in-memory sorted write buffer.
//!
//! Like HBase's MemStore: an ordered map from row key to the newest
//! value (or a tombstone), with byte accounting that drives flush
//! decisions.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A value or a deletion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A live value.
    Value(Vec<u8>),
    /// A tombstone shadowing older versions in SSTables.
    Tombstone,
}

impl Entry {
    /// The live value, if any.
    pub fn value(&self) -> Option<&[u8]> {
        match self {
            Entry::Value(v) => Some(v),
            Entry::Tombstone => None,
        }
    }

    fn byte_size(&self) -> usize {
        match self {
            Entry::Value(v) => v.len(),
            Entry::Tombstone => 1,
        }
    }
}

/// The sorted in-memory buffer.
///
/// # Example
///
/// ```
/// use bdb_kvstore::Memtable;
/// let mut m = Memtable::new();
/// m.put(b"k".to_vec(), b"v".to_vec());
/// assert_eq!(m.get(b"k").and_then(|e| e.value()), Some(&b"v"[..]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Entry>,
    bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or overwrites a value. Returns the previous entry.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Entry> {
        self.insert(key, Entry::Value(value))
    }

    /// Inserts a tombstone. Returns the previous entry.
    pub fn delete(&mut self, key: Vec<u8>) -> Option<Entry> {
        self.insert(key, Entry::Tombstone)
    }

    fn insert(&mut self, key: Vec<u8>, entry: Entry) -> Option<Entry> {
        self.bytes += key.len() + entry.byte_size();
        let old = self.map.insert(key, entry);
        if let Some(old) = &old {
            self.bytes = self.bytes.saturating_sub(old.byte_size());
        }
        old
    }

    /// Looks up the newest entry for `key` (value or tombstone).
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(key)
    }

    /// Iterates entries with keys in `[start, end)` in order.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &[u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a Entry)> + 'a {
        self.map
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, v)| (k.as_slice(), v))
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes (keys + values + tombstones).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drains all entries in key order, leaving the memtable empty.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Entry)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        assert!(m.put(b"a".to_vec(), b"1".to_vec()).is_none());
        let old = m.put(b"a".to_vec(), b"2".to_vec());
        assert_eq!(old, Some(Entry::Value(b"1".to_vec())));
        assert_eq!(m.get(b"a"), Some(&Entry::Value(b"2".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstone_shadowing() {
        let mut m = Memtable::new();
        m.put(b"a".to_vec(), b"1".to_vec());
        m.delete(b"a".to_vec());
        assert_eq!(m.get(b"a"), Some(&Entry::Tombstone));
        assert_eq!(m.get(b"a").and_then(|e| e.value()), None);
    }

    #[test]
    fn range_is_ordered_and_bounded() {
        let mut m = Memtable::new();
        for k in ["d", "a", "c", "b", "e"] {
            m.put(k.as_bytes().to_vec(), b"x".to_vec());
        }
        let keys: Vec<&[u8]> = m.range(b"b", b"e").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"b".as_slice(), b"c", b"d"]);
    }

    #[test]
    fn byte_accounting_tracks_overwrites() {
        let mut m = Memtable::new();
        m.put(b"key".to_vec(), vec![0; 100]);
        let after_first = m.bytes();
        assert_eq!(after_first, 103);
        m.put(b"key".to_vec(), vec![0; 10]);
        assert_eq!(m.bytes(), 103 + 13 - 100);
    }

    #[test]
    fn drain_returns_sorted_and_clears() {
        let mut m = Memtable::new();
        m.put(b"b".to_vec(), b"2".to_vec());
        m.put(b"a".to_vec(), b"1".to_vec());
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].0 < drained[1].0);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }
}
