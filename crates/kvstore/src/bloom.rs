//! Bloom filters for SSTable read-path short-circuiting.

/// A fixed-size bloom filter with double hashing (Kirsch–Mitzenmacher).
///
/// # Example
///
/// ```
/// use bdb_kvstore::BloomFilter;
/// let mut bf = BloomFilter::for_items(1000, 0.01);
/// bf.insert(b"hello");
/// assert!(bf.contains(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Sizes a filter for `items` expected insertions at the given target
    /// false-positive rate using the standard optimal formulas.
    ///
    /// # Panics
    ///
    /// Panics if `fp_rate` is not in `(0, 1)`.
    pub fn for_items(items: usize, fp_rate: f64) -> Self {
        assert!(fp_rate > 0.0 && fp_rate < 1.0, "fp rate must be in (0,1)");
        let items = items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let num_bits = (-(items * fp_rate.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64;
        let hashes = ((num_bits as f64 / items) * ln2).round().clamp(1.0, 16.0) as u32;
        Self { bits: vec![0u64; (num_bits as usize).div_ceil(64)], num_bits, hashes }
    }

    /// Number of hash probes per operation.
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Size of the bit array in bits.
    pub fn bit_count(&self) -> u64 {
        self.num_bits
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.hashes {
            let bit = self.bit_index(h1, h2, i);
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Tests membership; false positives possible, false negatives not.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..self.hashes).all(|i| {
            let bit = self.bit_index(h1, h2, i);
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// The bit positions a lookup of `key` would probe — exposed so
    /// traced runs can replay the exact probe addresses.
    pub fn probe_bits(&self, key: &[u8]) -> Vec<u64> {
        let (h1, h2) = hash_pair(key);
        (0..self.hashes).map(|i| self.bit_index(h1, h2, i)).collect()
    }

    /// Serialized size in bytes (bit array only).
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        out.extend_from_slice(&self.hashes.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`BloomFilter::to_bytes`] output.
    ///
    /// Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let num_bits = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let hashes = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let words = (num_bits as usize).div_ceil(64);
        let rest = &bytes[12..];
        if rest.len() != words * 8 || hashes == 0 {
            return None;
        }
        let bits = rest
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(Self { bits, num_bits, hashes })
    }

    fn bit_index(&self, h1: u64, h2: u64, i: u32) -> u64 {
        h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.num_bits
    }
}

/// Two independent 64-bit hashes of `key` (FNV-1a variants).
fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x9e37_79b9_7f4a_7c15;
    for &b in key {
        h1 = (h1 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        h2 = (h2 ^ b as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    (h1, h2 | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::for_items(1000, 0.01);
        for i in 0..1000u32 {
            bf.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(bf.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_roughly_met() {
        let mut bf = BloomFilter::for_items(10_000, 0.01);
        for i in 0..10_000u32 {
            bf.insert(&i.to_le_bytes());
        }
        let fps = (10_000u32..60_000).filter(|i| bf.contains(&i.to_le_bytes())).count();
        let rate = fps as f64 / 50_000.0;
        assert!(rate < 0.03, "observed fp rate {rate}");
    }

    #[test]
    fn empty_filter_rejects() {
        let bf = BloomFilter::for_items(100, 0.01);
        assert!(!bf.contains(b"anything"));
    }

    #[test]
    fn probe_bits_match_hash_count() {
        let bf = BloomFilter::for_items(100, 0.01);
        let bits = bf.probe_bits(b"key");
        assert_eq!(bits.len(), bf.hash_count() as usize);
        assert!(bits.iter().all(|&b| b < bf.bit_count()));
    }

    #[test]
    fn serde_roundtrip() {
        let mut bf = BloomFilter::for_items(500, 0.02);
        for i in 0..500u32 {
            bf.insert(&i.to_le_bytes());
        }
        let back = BloomFilter::from_bytes(&bf.to_bytes()).unwrap();
        for i in 0..500u32 {
            assert!(back.contains(&i.to_le_bytes()));
        }
        assert_eq!(back.hash_count(), bf.hash_count());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(&[]).is_none());
        assert!(BloomFilter::from_bytes(&[0; 11]).is_none());
        let mut ok = BloomFilter::for_items(10, 0.1).to_bytes();
        ok.pop();
        assert!(BloomFilter::from_bytes(&ok).is_none());
    }

    #[test]
    #[should_panic(expected = "fp rate")]
    fn invalid_fp_rate_panics() {
        BloomFilter::for_items(10, 1.5);
    }
}
