//! Immutable sorted string tables with block index and bloom filter.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! [data block]*  [index]  [bloom]  [footer]
//! data block  = (klen u32, key, tomb u8, vlen u32, value)*   ≈ 4 KiB each
//! index       = count u32, (klen u32, first_key, offset u64, len u32)*
//! footer      = index_off u64, index_len u64, bloom_off u64,
//!               bloom_len u64, entries u64, magic u64
//! ```

use crate::bloom::BloomFilter;
use crate::memtable::Entry;
use bdb_faults::FaultPlan;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: u64 = 0x0042_4442_5353_5442; // "BDB SSTB"
const BLOCK_TARGET: usize = 4096;

/// One index entry: the first key of a block plus its file extent.
#[derive(Debug, Clone)]
struct IndexEntry {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
}

/// A read handle to one SSTable file.
#[derive(Debug)]
pub struct SsTable {
    path: PathBuf,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    entries: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

impl SsTable {
    /// Builds an SSTable at `path` from key-sorted entries (values or
    /// tombstones).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `entries` is not sorted by key.
    pub fn build(path: &Path, entries: &[(Vec<u8>, Entry)]) -> std::io::Result<Self> {
        Self::build_with(path, entries, &FaultPlan::disabled(), "kvstore.sstable.build")
    }

    /// [`SsTable::build`] writing through the fault plan's `site`, with
    /// crash-safe publication: the table is written to `<path>.tmp` and
    /// atomically renamed into place only once every byte (including
    /// the footer) is on disk — HBase's tmp-then-move commit for store
    /// files. A failed build removes the partial tmp file, so a reader
    /// never observes a half-written table.
    ///
    /// # Errors
    ///
    /// Propagates real and injected I/O errors.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `entries` is not sorted by key.
    pub fn build_with(
        path: &Path,
        entries: &[(Vec<u8>, Entry)],
        faults: &FaultPlan,
        site: &'static str,
    ) -> std::io::Result<Self> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries must be sorted");
        let tmp = tmp_path(path);
        let written = (|| {
            let mut w = faults.wrap_write(site, File::create(&tmp)?);
            let sections = write_table(&mut w, entries)?;
            w.flush()?;
            std::fs::rename(&tmp, path)?;
            Ok(sections)
        })();
        match written {
            Ok((index, bloom, file_bytes)) => Ok(Self {
                path: path.to_owned(),
                index,
                bloom,
                entries: entries.len() as u64,
                file_bytes,
            }),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Opens an existing SSTable, reading its index, bloom and footer.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the footer magic or sections are corrupt.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let file_bytes = file.metadata()?.len();
        if file_bytes < 48 {
            return Err(invalid("file too small"));
        }
        file.seek(SeekFrom::End(-48))?;
        let mut footer = [0u8; 48];
        file.read_exact(&mut footer)?;
        let u64_at = |i: usize| u64::from_le_bytes(footer[i..i + 8].try_into().expect("8 bytes"));
        if u64_at(40) != MAGIC {
            return Err(invalid("bad magic"));
        }
        let (index_off, index_len) = (u64_at(0), u64_at(8));
        let (bloom_off, bloom_len) = (u64_at(16), u64_at(24));
        let entries = u64_at(32);

        file.seek(SeekFrom::Start(index_off))?;
        let mut index_bytes = vec![0u8; index_len as usize];
        file.read_exact(&mut index_bytes)?;
        let index = parse_index(&index_bytes).ok_or_else(|| invalid("bad index"))?;

        file.seek(SeekFrom::Start(bloom_off))?;
        let mut bloom_bytes = vec![0u8; bloom_len as usize];
        file.read_exact(&mut bloom_bytes)?;
        let bloom = BloomFilter::from_bytes(&bloom_bytes).ok_or_else(|| invalid("bad bloom"))?;

        Ok(Self { path: path.to_owned(), index, bloom, entries, file_bytes })
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of data blocks.
    pub fn block_count(&self) -> usize {
        self.index.len()
    }

    /// The file this table reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The table's bloom filter (for read-path tracing).
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// Whether the bloom filter may contain `key`.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.contains(key)
    }

    /// The block index position a lookup of `key` would search
    /// (`None` if the key precedes the first block).
    pub fn block_for(&self, key: &[u8]) -> Option<usize> {
        if self.index.is_empty() {
            return None;
        }
        match self.index.binary_search_by(|e| e.first_key.as_slice().cmp(key)) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Point lookup. Returns the entry (value or tombstone) if the key is
    /// present in this table.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors reading the data block.
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<Entry>> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        let Some(block_idx) = self.block_for(key) else {
            return Ok(None);
        };
        let block = self.read_block(block_idx)?;
        Ok(scan_block(&block, |k| k == key).into_iter().next().map(|(_, e)| e))
    }

    /// Reads data block `idx` fully.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn read_block(&self, idx: usize) -> std::io::Result<Vec<u8>> {
        let e = &self.index[idx];
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(e.offset))?;
        let mut buf = vec![0u8; e.len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Iterates every entry in key order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn iter_all(&self) -> std::io::Result<Vec<(Vec<u8>, Entry)>> {
        let mut out = Vec::with_capacity(self.entries as usize);
        for i in 0..self.index.len() {
            let block = self.read_block(i)?;
            out.extend(scan_block(&block, |_| true));
        }
        Ok(out)
    }

    /// Range scan over `[start, end)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn scan(&self, start: &[u8], end: &[u8]) -> std::io::Result<Vec<(Vec<u8>, Entry)>> {
        let first_block = self.block_for(start).unwrap_or(0);
        let mut out = Vec::new();
        for i in first_block..self.index.len() {
            if self.index[i].first_key.as_slice() >= end {
                break;
            }
            let block = self.read_block(i)?;
            for (k, e) in scan_block(&block, |_| true) {
                if k.as_slice() >= end {
                    return Ok(out);
                }
                if k.as_slice() >= start {
                    out.push((k, e));
                }
            }
        }
        Ok(out)
    }

    /// Deletes the backing file (after compaction supersedes the table).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn remove_file(self) -> std::io::Result<()> {
        std::fs::remove_file(&self.path)
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned())
}

/// The staging path a table is written to before its atomic rename.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Streams data blocks, index, bloom and footer to `file`, returning
/// the in-memory index, the bloom filter and the total byte count.
fn write_table<W: Write>(
    file: &mut W,
    entries: &[(Vec<u8>, Entry)],
) -> std::io::Result<(Vec<IndexEntry>, BloomFilter, u64)> {
    let mut bloom = BloomFilter::for_items(entries.len().max(1), 0.01);
    let mut index = Vec::new();
    let mut block = Vec::with_capacity(BLOCK_TARGET * 2);
    let mut block_first: Option<Vec<u8>> = None;
    let mut offset = 0u64;

    let flush_block = |file: &mut W,
                       block: &mut Vec<u8>,
                       first: &mut Option<Vec<u8>>,
                       offset: &mut u64,
                       index: &mut Vec<IndexEntry>|
     -> std::io::Result<()> {
        if let Some(first_key) = first.take() {
            file.write_all(block)?;
            index.push(IndexEntry { first_key, offset: *offset, len: block.len() as u32 });
            *offset += block.len() as u64;
            block.clear();
        }
        Ok(())
    };

    for (key, entry) in entries {
        bloom.insert(key);
        if block_first.is_none() {
            block_first = Some(key.clone());
        }
        block.extend_from_slice(&(key.len() as u32).to_le_bytes());
        block.extend_from_slice(key);
        match entry {
            Entry::Tombstone => {
                block.push(1);
                block.extend_from_slice(&0u32.to_le_bytes());
            }
            Entry::Value(v) => {
                block.push(0);
                block.extend_from_slice(&(v.len() as u32).to_le_bytes());
                block.extend_from_slice(v);
            }
        }
        if block.len() >= BLOCK_TARGET {
            flush_block(file, &mut block, &mut block_first, &mut offset, &mut index)?;
        }
    }
    flush_block(file, &mut block, &mut block_first, &mut offset, &mut index)?;

    // Index section.
    let index_off = offset;
    let mut index_bytes = Vec::new();
    index_bytes.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for e in &index {
        index_bytes.extend_from_slice(&(e.first_key.len() as u32).to_le_bytes());
        index_bytes.extend_from_slice(&e.first_key);
        index_bytes.extend_from_slice(&e.offset.to_le_bytes());
        index_bytes.extend_from_slice(&e.len.to_le_bytes());
    }
    file.write_all(&index_bytes)?;

    // Bloom section.
    let bloom_off = index_off + index_bytes.len() as u64;
    let bloom_bytes = bloom.to_bytes();
    file.write_all(&bloom_bytes)?;

    // Footer.
    let mut footer = Vec::with_capacity(48);
    footer.extend_from_slice(&index_off.to_le_bytes());
    footer.extend_from_slice(&(index_bytes.len() as u64).to_le_bytes());
    footer.extend_from_slice(&bloom_off.to_le_bytes());
    footer.extend_from_slice(&(bloom_bytes.len() as u64).to_le_bytes());
    footer.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    footer.extend_from_slice(&MAGIC.to_le_bytes());
    file.write_all(&footer)?;
    file.flush()?;
    let file_bytes = bloom_off + bloom_bytes.len() as u64 + 48;
    Ok((index, bloom, file_bytes))
}

fn parse_index(bytes: &[u8]) -> Option<Vec<IndexEntry>> {
    let mut s = bytes;
    let count = read_u32(&mut s)? as usize;
    let mut index = Vec::with_capacity(count);
    for _ in 0..count {
        let klen = read_u32(&mut s)? as usize;
        if s.len() < klen {
            return None;
        }
        let (key, rest) = s.split_at(klen);
        s = rest;
        let offset = read_u64(&mut s)?;
        let len = read_u32(&mut s)?;
        index.push(IndexEntry { first_key: key.to_vec(), offset, len });
    }
    Some(index)
}

fn read_u32(s: &mut &[u8]) -> Option<u32> {
    if s.len() < 4 {
        return None;
    }
    let (head, tail) = s.split_at(4);
    *s = tail;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

fn read_u64(s: &mut &[u8]) -> Option<u64> {
    if s.len() < 8 {
        return None;
    }
    let (head, tail) = s.split_at(8);
    *s = tail;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

/// Decodes entries of a data block, keeping those whose key satisfies
/// `pred`.
fn scan_block(block: &[u8], pred: impl Fn(&[u8]) -> bool) -> Vec<(Vec<u8>, Entry)> {
    let mut out = Vec::new();
    let mut s = block;
    while !s.is_empty() {
        let Some(klen) = read_u32(&mut s) else { break };
        if s.len() < klen as usize + 5 {
            break;
        }
        let (key, rest) = s.split_at(klen as usize);
        s = rest;
        let tomb = s[0] == 1;
        s = &s[1..];
        let Some(vlen) = read_u32(&mut s) else { break };
        if s.len() < vlen as usize {
            break;
        }
        let (val, rest) = s.split_at(vlen as usize);
        s = rest;
        if pred(key) {
            let entry = if tomb { Entry::Tombstone } else { Entry::Value(val.to_vec()) };
            out.push((key.to_vec(), entry));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bdb-sst-{}-{name}.sst", std::process::id()))
    }

    fn sample_entries(n: usize) -> Vec<(Vec<u8>, Entry)> {
        (0..n)
            .map(|i| {
                let key = format!("key{i:08}").into_bytes();
                if i % 10 == 3 {
                    (key, Entry::Tombstone)
                } else {
                    (key, Entry::Value(format!("value-{i}").into_bytes()))
                }
            })
            .collect()
    }

    #[test]
    fn build_get_roundtrip() {
        let path = tmp("roundtrip");
        let entries = sample_entries(1000);
        let table = SsTable::build(&path, &entries).unwrap();
        assert_eq!(table.len(), 1000);
        assert!(table.block_count() > 1, "should span multiple blocks");
        for (k, e) in entries.iter().step_by(37) {
            assert_eq!(table.get(k).unwrap().as_ref(), Some(e));
        }
        assert_eq!(table.get(b"nope").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rereads_metadata() {
        let path = tmp("open");
        let entries = sample_entries(500);
        let built = SsTable::build(&path, &entries).unwrap();
        let opened = SsTable::open(&path).unwrap();
        assert_eq!(opened.len(), built.len());
        assert_eq!(opened.block_count(), built.block_count());
        assert_eq!(opened.get(b"key00000042").unwrap(), built.get(b"key00000042").unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_corrupt_footer() {
        let path = tmp("corrupt");
        SsTable::build(&path, &sample_entries(10)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // clobber magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(SsTable::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn iter_all_is_ordered_and_complete() {
        let path = tmp("iter");
        let entries = sample_entries(300);
        let table = SsTable::build(&path, &entries).unwrap();
        let all = table.iter_all().unwrap();
        assert_eq!(all, entries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scan_respects_bounds() {
        let path = tmp("scan");
        let entries = sample_entries(200);
        let table = SsTable::build(&path, &entries).unwrap();
        let out = table.scan(b"key00000050", b"key00000060").unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].0, b"key00000050".to_vec());
        assert_eq!(out[9].0, b"key00000059".to_vec());
        // Scan before all keys and after all keys.
        assert!(table.scan(b"a", b"b").unwrap().is_empty());
        assert!(table.scan(b"z", b"zz").unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table() {
        let path = tmp("empty");
        let table = SsTable::build(&path, &[]).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.get(b"x").unwrap(), None);
        assert!(table.iter_all().unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn keys_before_first_block_miss() {
        let path = tmp("before");
        let entries = sample_entries(100);
        let table = SsTable::build(&path, &entries).unwrap();
        assert_eq!(table.block_for(b"aaa"), None);
        assert_eq!(table.get(b"aaa").unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_build_publishes_nothing() {
        let path = tmp("atomic");
        let _ = std::fs::remove_file(&path);
        let plan = bdb_faults::FaultPlan::builder(11).torn_write_nth("sst.test.write", 0).build();
        let err = SsTable::build_with(&path, &sample_entries(1000), &plan, "sst.test.write")
            .expect_err("torn write must fail the build");
        assert!(bdb_faults::is_injected(&err));
        assert!(!path.exists(), "no partial table at the final path");
        assert!(!tmp_path(&path).exists(), "partial tmp file removed");
        // A later, fault-free attempt at the same path succeeds cleanly.
        let table = SsTable::build(&path, &sample_entries(1000)).unwrap();
        assert_eq!(table.len(), 1000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn remove_file_deletes() {
        let path = tmp("remove");
        let table = SsTable::build(&path, &sample_entries(10)).unwrap();
        assert!(path.exists());
        table.remove_file().unwrap();
        assert!(!path.exists());
    }
}
