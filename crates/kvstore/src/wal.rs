//! The write-ahead log: durability for un-flushed memtable contents.
//!
//! Every mutation is appended as a length-prefixed record before it is
//! applied to the memtable; on restart the log is replayed. The format
//! is `op(1) keylen(4) key vallen(4) val` with a per-record XOR checksum
//! byte so torn tails are detected and dropped, as a real WAL does.

use bdb_faults::{FaultPlan, FaultyWrite};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One replayed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A put of `(key, value)`.
    Put(Vec<u8>, Vec<u8>),
    /// A delete of `key`.
    Delete(Vec<u8>),
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct WriteAheadLog {
    path: PathBuf,
    writer: BufWriter<FaultyWrite<File>>,
    faults: FaultPlan,
    records: u64,
    offset: u64,
}

impl WriteAheadLog {
    /// Opens (appending) or creates the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Self::open_with(path, FaultPlan::disabled())
    }

    /// [`WriteAheadLog::open`] with record writes passing through the
    /// fault plan's [`crate::sites::WAL_APPEND`] site, so a torn write
    /// there leaves exactly the half-written tail a crash mid-append
    /// would — which [`WriteAheadLog::replay`] then drops.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open_with(path: &Path, faults: FaultPlan) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let writer = BufWriter::new(faults.wrap_write(crate::sites::WAL_APPEND, file));
        Ok(Self { path: path.to_owned(), writer, faults, records: 0, offset: 0 })
    }

    /// Appends a put record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn log_put(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        self.append(1, key, value)
    }

    /// Appends a delete record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn log_delete(&mut self, key: &[u8]) -> std::io::Result<()> {
        self.append(2, key, &[])
    }

    fn append(&mut self, op: u8, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        let mut rec = Vec::with_capacity(10 + key.len() + value.len());
        rec.push(op);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(value);
        let checksum = rec.iter().fold(0u8, |a, &b| a ^ b);
        rec.push(checksum);
        self.writer.write_all(&rec)?;
        self.writer.flush()?;
        self.records += 1;
        self.offset += rec.len() as u64;
        Ok(())
    }

    /// Records appended through this handle.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Logical log position: total bytes of whole records acknowledged
    /// through this handle since open. Unlike [`WriteAheadLog::records`]
    /// it is *not* reset by [`WriteAheadLog::truncate`], so it grows
    /// monotonically with every durable append — the quantity replica
    /// promotion compares ("highest replicated WAL offset"). A torn or
    /// failed append does not advance it.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Replays every intact record in `path`, stopping silently at the
    /// first torn/corrupt record (crash-consistent prefix semantics).
    ///
    /// # Errors
    ///
    /// Propagates read errors; a missing file replays as empty.
    pub fn replay(path: &Path) -> std::io::Result<Vec<WalOp>> {
        Self::replay_with_offset(path).map(|(ops, _)| ops)
    }

    /// [`WriteAheadLog::replay`], additionally reporting the byte
    /// length of the intact whole-record prefix (the durable log
    /// offset a rejoining replica resumes from).
    ///
    /// # Errors
    ///
    /// Propagates read errors; a missing file replays as empty.
    pub fn replay_with_offset(path: &Path) -> std::io::Result<(Vec<WalOp>, u64)> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        }
        let mut ops = Vec::new();
        let mut s = bytes.as_slice();
        while let Some((op, rest)) = parse_record(s) {
            ops.push(op);
            s = rest;
        }
        let durable = (bytes.len() - s.len()) as u64;
        Ok((ops, durable))
    }

    /// Truncates the log (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        self.writer = BufWriter::new(self.faults.wrap_write(crate::sites::WAL_APPEND, file));
        self.records = 0;
        Ok(())
    }
}

fn parse_record(s: &[u8]) -> Option<(WalOp, &[u8])> {
    if s.len() < 10 {
        return None;
    }
    let op = s[0];
    let klen = u32::from_le_bytes(s[1..5].try_into().ok()?) as usize;
    if s.len() < 5 + klen + 4 {
        return None;
    }
    let key = &s[5..5 + klen];
    let vstart = 5 + klen;
    let vlen = u32::from_le_bytes(s[vstart..vstart + 4].try_into().ok()?) as usize;
    let end = vstart + 4 + vlen;
    if s.len() < end + 1 {
        return None;
    }
    let value = &s[vstart + 4..end];
    let checksum = s[end];
    let computed = s[..end].iter().fold(0u8, |a, &b| a ^ b);
    if checksum != computed {
        return None;
    }
    let parsed = match op {
        1 => WalOp::Put(key.to_vec(), value.to_vec()),
        2 => WalOp::Delete(key.to_vec()),
        _ => return None,
    };
    Some((parsed, &s[end + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bdb-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn log_and_replay() {
        let path = tmp("basic");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.log_put(b"a", b"1").unwrap();
            wal.log_delete(b"a").unwrap();
            wal.log_put(b"b", b"2").unwrap();
            assert_eq!(wal.records(), 3);
        }
        let ops = WriteAheadLog::replay(&path).unwrap();
        assert_eq!(
            ops,
            vec![
                WalOp::Put(b"a".to_vec(), b"1".to_vec()),
                WalOp::Delete(b"a".to_vec()),
                WalOp::Put(b"b".to_vec(), b"2".to_vec()),
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let ops = WriteAheadLog::replay(Path::new("/nonexistent/bdb-wal")).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.log_put(b"good", b"record").unwrap();
        }
        // Append garbage simulating a torn write.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[1, 200, 0, 0]).unwrap();
        }
        let ops = WriteAheadLog::replay(&path).unwrap();
        assert_eq!(ops.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.log_put(b"a", b"1").unwrap();
            wal.log_put(b"b", b"2").unwrap();
        }
        // Flip a byte in the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let ops = WriteAheadLog::replay(&path).unwrap();
        assert_eq!(ops.len(), 1, "replay stops at corrupt record");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offset_counts_only_acknowledged_whole_records() {
        let path = tmp("offset");
        let _ = std::fs::remove_file(&path);
        let plan =
            bdb_faults::FaultPlan::builder(1).torn_write_nth(crate::sites::WAL_APPEND, 2).build();
        let mut wal = WriteAheadLog::open_with(&path, plan).unwrap();
        wal.log_put(b"a", b"1").unwrap();
        wal.log_put(b"bb", b"22").unwrap();
        let acked = wal.offset();
        assert_eq!(acked, (10 + 2) as u64 + (10 + 4) as u64);
        assert!(wal.log_put(b"torn-key", b"torn-value").is_err());
        assert_eq!(wal.offset(), acked, "a torn append does not advance the offset");
        let (ops, durable) = WriteAheadLog::replay_with_offset(&path).unwrap();
        assert_eq!(ops.len(), 2, "replay drops the torn tail");
        assert_eq!(durable, acked, "durable prefix length equals the acknowledged offset");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn offset_survives_truncate() {
        let path = tmp("offset-trunc");
        let _ = std::fs::remove_file(&path);
        let mut wal = WriteAheadLog::open(&path).unwrap();
        wal.log_put(b"a", b"1").unwrap();
        let before = wal.offset();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.offset(), before, "offset is a logical position, not a file size");
        wal.log_put(b"b", b"2").unwrap();
        assert!(wal.offset() > before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets() {
        let path = tmp("trunc");
        let _ = std::fs::remove_file(&path);
        let mut wal = WriteAheadLog::open(&path).unwrap();
        wal.log_put(b"a", b"1").unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert!(WriteAheadLog::replay(&path).unwrap().is_empty());
        wal.log_put(b"b", b"2").unwrap();
        assert_eq!(WriteAheadLog::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
