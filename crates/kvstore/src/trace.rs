//! Read/write-path instrumentation model for the LSM store.
//!
//! HBase region servers push every operation through RPC dispatch,
//! row-lock, MemStore and HFile layers; we model that stack's code
//! footprint plus the genuine data-structure accesses the LSM read and
//! write paths perform (memtable search, bloom-filter bit probes, block
//! index binary search, data-block scan, WAL append). Addresses come
//! from the dedicated kvstore region of the synthetic address space, so
//! a characterized Cloud OLTP run observes both the store's locality and
//! its instruction-footprint pressure. Structure sizes are chosen so the
//! resident set exceeds L2 but mostly fits L3 — the combination behind
//! the paper's "online services have high L2 MPKI, yet the LLC stays
//! effective" observation.

use bdb_archsim::layout::regions;
use bdb_archsim::layout::splitmix64;
use bdb_archsim::{AddressSpace, Probe, SoftwareStack};

/// Synthetic-address model of the store's resident structures.
#[derive(Debug, Clone)]
pub struct StoreTraceModel {
    stack: SoftwareStack,
    memtable_base: u64,
    memtable_span: u64,
    bloom_base: u64,
    bloom_span: u64,
    index_base: u64,
    block_cache_base: u64,
    block_cache_span: u64,
    wal_base: u64,
    wal_cursor: u64,
    event: u64,
}

impl StoreTraceModel {
    /// Builds the standard model: ~1.3 MiB of server code across four
    /// layers plus memtable/bloom/index areas sized to exceed L2 while
    /// fitting L3, and a 64 MiB block cache whose cold tail reaches
    /// DRAM (hot Zipf rows stay LLC-resident).
    pub fn new() -> Self {
        let mut asp = AddressSpace::with_bases(regions::KVSTORE_HEAP, regions::KVSTORE_CODE);
        let stack = SoftwareStack::builder("kvstore-server")
            .layer(&mut asp, "rpc-dispatch", 6, 512, 128, 4096, 2, 4)
            .layer(&mut asp, "row-txn", 4, 512, 64, 4096, 1, 6)
            .layer(&mut asp, "memstore", 4, 512, 48, 4096, 1, 8)
            .layer(&mut asp, "hfile-io", 4, 512, 64, 4096, 1, 8)
            .build();
        let memtable_span = 2 << 20;
        let memtable_base = asp.alloc(memtable_span, "memtable-arena");
        let bloom_span = 1 << 20;
        let bloom_base = asp.alloc(bloom_span, "bloom-filters");
        let index_base = asp.alloc(2 << 20, "block-indexes");
        let block_cache_span = 64 << 20;
        let block_cache_base = asp.alloc(block_cache_span, "block-cache");
        let wal_base = asp.alloc(1 << 20, "wal-buffer");
        Self {
            stack,
            memtable_base,
            memtable_span,
            bloom_base,
            bloom_span,
            index_base,
            block_cache_base,
            block_cache_span,
            wal_base,
            wal_cursor: 0,
            event: 0,
        }
    }

    /// Static code footprint of the modeled server in bytes.
    pub fn code_footprint(&self) -> u64 {
        self.stack.footprint_bytes()
    }

    /// Pre-touches the server code (warm-up).
    pub fn warm<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        self.stack.warm(probe);
    }

    fn bump(&mut self) -> u64 {
        self.event = self.event.wrapping_add(1);
        self.event
    }

    /// One operation entering the server (RPC + dispatch layers).
    pub fn on_op<P: Probe + ?Sized>(&mut self, probe: &mut P) {
        let e = self.bump();
        self.stack.invoke(probe, e);
        probe.int_ops(12);
    }

    /// A memtable walk: B-tree with ~64-wide nodes, one node load per
    /// level, plus the leaf write when `write`.
    pub fn memtable_walk<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        key_hash: u64,
        len: usize,
        write: bool,
    ) {
        // log64(len) levels: a 64-ary B-tree as real memstores use.
        let depth = ((len.max(2) as f64).log2() / 6.0).ceil().max(1.0) as u64;
        for level in 0..depth {
            let addr = self.memtable_base
                + splitmix64(key_hash ^ level.wrapping_mul(0x5851_F42D)) % self.memtable_span;
            probe.load(addr & !63, 64);
            probe.int_ops(24); // binary search within the node
            probe.branch(level % 2 == 0);
        }
        if write {
            let addr = self.memtable_base + splitmix64(key_hash) % self.memtable_span;
            probe.store(addr & !63, 64);
        }
    }

    /// Bloom-filter membership test: one bit probe per hash.
    pub fn bloom_probe<P: Probe + ?Sized>(&mut self, probe: &mut P, table_id: u64, bits: &[u64]) {
        let table_off = splitmix64(table_id) % (self.bloom_span / 2);
        for &bit in bits {
            let addr = self.bloom_base + (table_off + bit / 8) % self.bloom_span;
            probe.load(addr, 8);
            probe.int_ops(4);
        }
    }

    /// Block-index binary search over `blocks` entries.
    pub fn index_search<P: Probe + ?Sized>(&mut self, probe: &mut P, table_id: u64, blocks: usize) {
        let steps = (blocks.max(2) as f64).log2().ceil() as u64;
        for s in 0..steps {
            let addr = self.index_base + splitmix64(table_id ^ (s << 32)) % (2 << 20);
            probe.load(addr & !63, 32);
            probe.int_ops(5);
            probe.branch(s % 2 == 1);
        }
    }

    /// A data block of `bytes` scanned from the block cache.
    pub fn block_read<P: Probe + ?Sized>(
        &mut self,
        probe: &mut P,
        table_id: u64,
        block_idx: usize,
        bytes: usize,
    ) {
        let base = self.block_cache_base
            + splitmix64(table_id.wrapping_mul(31).wrapping_add(block_idx as u64))
                % self.block_cache_span;
        let span = (bytes as u64).min(8192);
        let mut off = 0;
        while off < span {
            probe.load((base + off) & !63, 64);
            probe.int_ops(10);
            off += 64;
        }
    }

    /// A WAL append of `bytes`.
    pub fn wal_append<P: Probe + ?Sized>(&mut self, probe: &mut P, bytes: usize) {
        let span = (bytes as u64).clamp(16, 4096);
        probe.store(self.wal_base + self.wal_cursor % (1 << 20), span as u32);
        self.wal_cursor += span;
        probe.int_ops(8);
    }
}

impl Default for StoreTraceModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_archsim::{CountingProbe, MachineConfig, SimProbe};

    #[test]
    fn footprint_exceeds_l1i() {
        let m = StoreTraceModel::new();
        assert!(m.code_footprint() > 512 * 1024);
    }

    #[test]
    fn memtable_walk_depth_scales() {
        let mut m = StoreTraceModel::new();
        let mut small = CountingProbe::default();
        m.memtable_walk(&mut small, 1, 16, false);
        let mut large = CountingProbe::default();
        m.memtable_walk(&mut large, 1, 1 << 24, false);
        assert!(large.mix().loads > small.mix().loads * 2);
    }

    #[test]
    fn block_read_touches_lines() {
        let mut m = StoreTraceModel::new();
        let mut p = CountingProbe::default();
        m.block_read(&mut p, 1, 0, 4096);
        assert_eq!(p.mix().loads, 64);
    }

    #[test]
    fn op_stream_matches_online_service_band() {
        // The paper: online service workloads show *high* L2 MPKI while
        // L3 stays effective.
        let mut m = StoreTraceModel::new();
        let mut p = SimProbe::new(MachineConfig::xeon_e5645());
        let op = |m: &mut StoreTraceModel, p: &mut SimProbe, i: u64| {
            m.on_op(p);
            m.memtable_walk(p, splitmix64(i), 1 << 16, false);
            m.bloom_probe(p, i % 8, &[i * 17 % 4096, i * 31 % 4096]);
            m.block_read(p, i % 8, (i % 64) as usize, 4096);
        };
        for i in 0..1500u64 {
            op(&mut m, &mut p, i);
        }
        p.reset_stats();
        for i in 0..6000u64 {
            op(&mut m, &mut p, 1500 + i);
        }
        let r = p.finish();
        assert!(r.l2_mpki() > 3.0, "L2 MPKI {}", r.l2_mpki());
        assert!(
            r.l3_mpki() < r.l2_mpki() / 2.0,
            "L3 absorbs the working set: L2 {} vs L3 {}",
            r.l2_mpki(),
            r.l3_mpki()
        );
    }
}
