//! An LSM-tree key-value store — the HBase stand-in of BigDataBench-RS.
//!
//! The paper's "Cloud OLTP" workloads (Read, Write, Scan; Table 4) run
//! against HBase 0.94.5. HBase is a log-structured merge store, so this
//! crate implements that architecture from scratch:
//!
//! * a **write-ahead log** ([`wal`]) for durability,
//! * an in-memory sorted **memtable** ([`memtable`]),
//! * immutable sorted **SSTables** on disk with sparse block indexes and
//!   **bloom filters** ([`sstable`], [`bloom`]),
//! * background-style **size-tiered compaction** ([`store`]).
//!
//! Reads consult the memtable, then newest-to-oldest SSTables, skipping
//! tables whose bloom filter rejects the key. Scans merge the memtable
//! and every table. All operations have `*_with` variants threading a
//! [`bdb_archsim::Probe`], which reports the loads a real LSM read path
//! performs (memtable search, bloom probes, index binary search, block
//! fetch) so Cloud OLTP workloads can be micro-architecturally
//! characterized.
//!
//! # Example
//!
//! ```
//! use bdb_kvstore::Store;
//!
//! # fn main() -> std::io::Result<()> {
//! let dir = std::env::temp_dir().join(format!("bdb-kv-{}", std::process::id()));
//! let mut store = Store::open(&dir)?;
//! store.put(b"row1".to_vec(), b"value".to_vec())?;
//! assert_eq!(store.get(b"row1")?, Some(b"value".to_vec()));
//! store.delete(b"row1")?;
//! assert_eq!(store.get(b"row1")?, None);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod memtable;
pub mod sstable;
pub mod store;
pub mod trace;
pub mod wal;

pub use bloom::BloomFilter;
pub use memtable::Memtable;
pub use sstable::SsTable;
pub use store::{Store, StoreConfig, StoreStats};
pub use trace::StoreTraceModel;
pub use wal::WriteAheadLog;

/// Fault-injection site names consulted by the store's write paths.
/// Pass these to a [`bdb_faults::FaultPlan`] (via
/// [`Store::open_with_faults`]) to target the matching crash point.
pub mod sites {
    /// I/O site covering every WAL record write; a torn write here
    /// models a crash mid-append, recovered by prefix replay on reopen.
    pub const WAL_APPEND: &str = "kvstore.wal.append";
    /// I/O site covering SSTable writes during a memtable flush; a
    /// failure here models a crash mid-flush, recovered by keeping the
    /// memtable and WAL intact and never publishing the partial table.
    pub const FLUSH_WRITE: &str = "kvstore.flush.write";
    /// I/O site covering SSTable writes during compaction; a failure
    /// here models a crash mid-compaction, recovered by keeping every
    /// input table live.
    pub const COMPACTION_WRITE: &str = "kvstore.compaction.write";
}
