//! Model-based testing: the LSM store against a `BTreeMap` reference
//! under random operation sequences including flushes and compactions.

use bdb_kvstore::{BloomFilter, Store, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
    Flush,
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k, v)),
        1 => any::<u16>().prop_map(Op::Delete),
        3 => any::<u16>().prop_map(Op::Get),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn key_bytes(k: u16) -> Vec<u8> {
    format!("k{k:05}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The store agrees with a BTreeMap model on every read, across any
    /// interleaving of mutations, flushes and compactions.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let dir = std::env::temp_dir().join(format!(
            "bdb-prop-{}-{:x}",
            std::process::id(),
            rand_tag(&ops)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = Store::open_with(
            &dir,
            StoreConfig { memtable_flush_bytes: 512, max_tables: 3, ..Default::default() },
        )
        .expect("open");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    store.put(key_bytes(*k), v.clone()).expect("put");
                    model.insert(key_bytes(*k), v.clone());
                }
                Op::Delete(k) => {
                    store.delete(&key_bytes(*k)).expect("delete");
                    model.remove(&key_bytes(*k));
                }
                Op::Get(k) => {
                    let got = store.get(&key_bytes(*k)).expect("get");
                    prop_assert_eq!(got.as_ref(), model.get(&key_bytes(*k)));
                }
                Op::Scan(a, b) => {
                    let got = store.scan(&key_bytes(*a), &key_bytes(*b)).expect("scan");
                    let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(key_bytes(*a)..key_bytes(*b))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
                Op::Flush => store.flush().expect("flush"),
                Op::Compact => store.compact().expect("compact"),
            }
        }
        // Final sweep: every model key agrees.
        for (k, v) in &model {
            let got = store.get(k).expect("get");
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovery: reopening after arbitrary mutations preserves content.
    #[test]
    fn reopen_preserves_state(
        puts in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..60),
        flush_at in 0usize..60,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "bdb-prop-re-{}-{:x}",
            std::process::id(),
            puts.iter().map(|&(k, v)| k as u64 + v as u64).sum::<u64>()
                ^ (puts.len() as u64) << 32 ^ (flush_at as u64) << 48
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let mut store = Store::open(&dir).expect("open");
            for (i, (k, v)) in puts.iter().enumerate() {
                store.put(key_bytes(*k), vec![*v]).expect("put");
                model.insert(key_bytes(*k), vec![*v]);
                if i == flush_at {
                    store.flush().expect("flush");
                }
            }
        }
        let mut store = Store::open(&dir).expect("reopen");
        for (k, v) in &model {
            let got = store.get(k).expect("get");
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Bloom filters never report false negatives for any key set.
    #[test]
    fn bloom_no_false_negatives(keys in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..32), 1..200)
    ) {
        let mut bf = BloomFilter::for_items(keys.len(), 0.01);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.contains(k));
        }
    }
}

/// Cheap deterministic tag so parallel proptest cases use distinct dirs.
fn rand_tag(ops: &[Op]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (i, op) in ops.iter().enumerate() {
        let x = match op {
            Op::Put(k, v) => *k as u64 ^ ((v.len() as u64) << 20),
            Op::Delete(k) | Op::Get(k) => *k as u64 | 1 << 40,
            Op::Scan(a, b) => (*a as u64) << 16 | *b as u64,
            Op::Flush => 0xF1,
            Op::Compact => 0xC0,
        };
        h = (h ^ x.wrapping_add(i as u64)).wrapping_mul(0x100_0000_01B3);
    }
    h
}
