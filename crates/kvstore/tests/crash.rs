//! Crash-point recovery tests: torn writes injected mid-WAL-append,
//! mid-flush and mid-compaction must never lose an acknowledged write
//! and never leave a partially visible SSTable — the HBase durability
//! contract (WAL prefix replay + tmp-then-rename store-file commit).

use bdb_faults::FaultPlan;
use bdb_kvstore::wal::WalOp;
use bdb_kvstore::{sites, Store, StoreConfig, WriteAheadLog};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdb-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: u32) -> Vec<u8> {
    format!("row{i:08}").into_bytes()
}

fn val(i: u32) -> Vec<u8> {
    format!("value-{i}").into_bytes()
}

/// Flush only when asked; never compact behind the test's back.
fn manual_config() -> StoreConfig {
    StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() }
}

/// Names of files in `dir` that are not the WAL — SSTables and any
/// leftover tmp staging files.
fn table_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n != "wal.log")
        .collect();
    names.sort();
    names
}

#[test]
fn torn_wal_append_loses_only_the_unacknowledged_tail() {
    let dir = tmpdir("torn-wal");
    let plan = FaultPlan::builder(21).torn_write_nth(sites::WAL_APPEND, 5).build();
    let mut acked = Vec::new();
    {
        let mut s = Store::open_with_faults(&dir, manual_config(), plan.clone()).unwrap();
        let mut failed_at = None;
        for i in 0..10u32 {
            match s.put(key(i), val(i)) {
                Ok(()) => acked.push(i),
                Err(e) => {
                    assert!(bdb_faults::is_injected(&e));
                    failed_at = Some(i);
                    break;
                }
            }
        }
        assert_eq!(failed_at, Some(5), "the sixth append tears");
        // Crash: drop the store with the half-written record on disk.
    }
    assert_eq!(plan.injected(), 1);
    let mut s = Store::open(&dir).unwrap();
    for i in &acked {
        assert_eq!(s.get(&key(*i)).unwrap(), Some(val(*i)), "acknowledged write {i} survived");
    }
    assert_eq!(s.get(&key(5)).unwrap(), None, "the torn record was never acknowledged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_flush_keeps_serving_and_retries_cleanly() {
    let dir = tmpdir("flush-retry");
    let plan = FaultPlan::builder(22).torn_write_nth(sites::FLUSH_WRITE, 0).build();
    let mut s = Store::open_with_faults(&dir, manual_config(), plan.clone()).unwrap();
    for i in 0..300 {
        s.put(key(i), val(i)).unwrap();
    }
    let err = s.flush().expect_err("first flush write is torn");
    assert!(bdb_faults::is_injected(&err));
    assert_eq!(s.table_count(), 0, "no partially visible SSTable");
    assert!(table_files(&dir).is_empty(), "no table or tmp file on disk: {:?}", table_files(&dir));
    for i in (0..300).step_by(37) {
        assert_eq!(s.get(&key(i)).unwrap(), Some(val(i)), "memtable restored after failed flush");
    }
    assert!(plan.recovered() >= 1, "the preserved memtable counts as a recovery");

    // The same handle retries: occurrence 1 of the site passes.
    s.flush().expect("retried flush succeeds");
    assert_eq!(s.table_count(), 1);
    drop(s);
    let mut s = Store::open(&dir).unwrap();
    for i in (0..300).step_by(37) {
        assert_eq!(s.get(&key(i)).unwrap(), Some(val(i)));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_flush_recovers_every_acknowledged_write_from_the_wal() {
    let dir = tmpdir("flush-crash");
    let plan = FaultPlan::builder(23).io_error_nth(sites::FLUSH_WRITE, 0).build();
    {
        let mut s = Store::open_with_faults(&dir, manual_config(), plan).unwrap();
        for i in 0..200 {
            s.put(key(i), val(i)).unwrap();
        }
        s.flush().expect_err("flush fails");
        // Crash: the data now lives only in the WAL.
    }
    let mut s = Store::open(&dir).unwrap();
    assert_eq!(s.table_count(), 0);
    for i in 0..200 {
        assert_eq!(s.get(&key(i)).unwrap(), Some(val(i)), "WAL replay recovered write {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_compaction_keeps_every_input_table() {
    let dir = tmpdir("compact-crash");
    let plan = FaultPlan::builder(24).torn_write_nth(sites::COMPACTION_WRITE, 0).build();
    let mut s = Store::open_with_faults(&dir, manual_config(), plan.clone()).unwrap();
    for round in 0..3u32 {
        for i in 0..150 {
            s.put(key(i), format!("r{round}-{i}").into_bytes()).unwrap();
        }
        s.flush().unwrap();
    }
    assert_eq!(s.table_count(), 3);
    let err = s.compact().expect_err("compaction write torn");
    assert!(bdb_faults::is_injected(&err));
    assert_eq!(s.table_count(), 3, "every input table stays live");
    for i in (0..150).step_by(29) {
        assert_eq!(s.get(&key(i)).unwrap(), Some(format!("r2-{i}").into_bytes()));
    }
    assert!(plan.recovered() >= 1);
    assert_eq!(table_files(&dir).len(), 3, "exactly the three published tables on disk");

    // Crash, reopen, and retry the compaction fault-free.
    drop(s);
    let mut s = Store::open(&dir).unwrap();
    assert_eq!(s.table_count(), 3);
    s.compact().expect("retried compaction succeeds");
    assert_eq!(s.table_count(), 1);
    for i in (0..150).step_by(29) {
        assert_eq!(s.get(&key(i)).unwrap(), Some(format!("r2-{i}").into_bytes()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_removes_stray_tmp_tables() {
    let dir = tmpdir("stray-tmp");
    std::fs::create_dir_all(&dir).unwrap();
    let stray = dir.join("table-000000000007.sst.tmp");
    std::fs::write(&stray, b"half a table a crashed flush left behind").unwrap();
    let mut s = Store::open(&dir).unwrap();
    assert!(!stray.exists(), "stray tmp removed during recovery");
    assert_eq!(s.table_count(), 0, "a tmp file is never loaded as a table");
    s.put(key(1), val(1)).unwrap();
    assert_eq!(s.get(&key(1)).unwrap(), Some(val(1)));
    std::fs::remove_dir_all(&dir).ok();
}

/// Encoded size of one WAL record: op(1) klen(4) key vlen(4) val cksum(1).
fn record_len(klen: usize, vlen: usize) -> usize {
    10 + klen + vlen
}

/// Cheap deterministic tag so parallel proptest cases use distinct files.
fn case_tag(ops: &[(Vec<u8>, Vec<u8>, bool)], cut_seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ cut_seed;
    for (i, (k, v, del)) in ops.iter().enumerate() {
        let x = (k.len() as u64) << 24 ^ (v.len() as u64) << 8 ^ u64::from(*del) ^ (i as u64) << 40;
        h = (h ^ x).wrapping_mul(0x100_0000_01B3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a WAL at *any* byte offset — mid-record or between
    /// records — replays exactly the longest prefix of whole records,
    /// and never errors. This is the invariant all crash recovery above
    /// rests on.
    #[test]
    fn truncated_wal_replays_an_exact_prefix(
        ops in proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 0..12),
                proptest::collection::vec(any::<u8>(), 0..20),
                any::<bool>(),
            ),
            1..30,
        ),
        cut_seed in any::<u64>(),
    ) {
        let path = std::env::temp_dir().join(format!(
            "bdb-wal-prop-{}-{:x}",
            std::process::id(),
            case_tag(&ops, cut_seed)
        ));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            for (k, v, del) in &ops {
                if *del { wal.log_delete(k) } else { wal.log_put(k, v) }.unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let replayed = WriteAheadLog::replay(&path).expect("replay never errors");

        // The expected prefix: records wholly inside the first `cut` bytes.
        let mut consumed = 0usize;
        let mut expect = 0usize;
        for (k, v, del) in &ops {
            let len = record_len(k.len(), if *del { 0 } else { v.len() });
            if consumed + len <= cut {
                consumed += len;
                expect += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(replayed.len(), expect, "cut at byte {} of {}", cut, bytes.len());
        for (got, (k, v, del)) in replayed.iter().zip(ops.iter()) {
            let want = if *del {
                WalOp::Delete(k.clone())
            } else {
                WalOp::Put(k.clone(), v.clone())
            };
            prop_assert_eq!(got, &want);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Mirror of the invariant above for the replication path: a WAL
    /// ship torn mid-record on the replica side must leave the replica,
    /// after replay, with *exactly* the acknowledged whole-record
    /// prefix — no torn record visible, no acknowledged record lost —
    /// and the durable offset equal to the sum of acknowledged record
    /// lengths. Stray tmp files from the crashed node are cleaned
    /// before rejoin.
    #[test]
    fn torn_ship_mid_record_replays_exact_acknowledged_prefix(
        values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..24),
            2..20,
        ),
        tear_at in 0u64..20,
    ) {
        let tear_at = tear_at % values.len() as u64;
        let tag = case_tag(
            &values.iter().map(|v| (Vec::new(), v.clone(), false)).collect::<Vec<_>>(),
            tear_at,
        );
        let dir = std::env::temp_dir().join(format!(
            "bdb-ship-prop-{}-{:x}",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::builder(7).torn_write_nth(sites::WAL_APPEND, tear_at).build();
        let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut acked_bytes = 0u64;
        {
            // The replica applies shipped records through its normal
            // write path; the tear hits the WAL append mid-record.
            let mut replica = Store::open_with_faults(&dir, manual_config(), plan.clone()).unwrap();
            for (i, v) in values.iter().enumerate() {
                let k = key(i as u32);
                match replica.put(k.clone(), v.clone()) {
                    Ok(()) => {
                        acked_bytes += record_len(k.len(), v.len()) as u64;
                        acked.push((k, v.clone()));
                        prop_assert_eq!(replica.wal_offset(), acked_bytes);
                    }
                    Err(e) => {
                        prop_assert!(bdb_faults::is_injected(&e));
                        break;
                    }
                }
            }
            // Crash mid-ship: the torn tail stays on disk.
        }
        prop_assert_eq!(acked.len() as u64, tear_at, "the ship tears at occurrence {}", tear_at);
        let (replayed, durable) = WriteAheadLog::replay_with_offset(&dir.join("wal.log")).unwrap();
        prop_assert_eq!(durable, acked_bytes, "durable prefix == acknowledged bytes");
        prop_assert_eq!(replayed.len(), acked.len(), "whole-record prefix only");

        // The crashed node also left a half-built table behind; the
        // post-ship cleanup removes it before the replica rejoins.
        std::fs::create_dir_all(&dir).unwrap();
        let stray = dir.join("table-000000000003.sst.tmp");
        std::fs::write(&stray, b"half-shipped table").unwrap();
        let removed = Store::remove_stray_tmp(&dir).unwrap();
        prop_assert_eq!(removed, 1);
        prop_assert!(!stray.exists());

        let mut replica = Store::open(&dir).unwrap();
        for (k, v) in &acked {
            let got = replica.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v), "acked write survived");
        }
        if (tear_at as usize) < values.len() {
            prop_assert_eq!(
                replica.get(&key(tear_at as u32)).unwrap(),
                None,
                "the torn record was never acknowledged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
