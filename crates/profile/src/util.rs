//! Per-worker utilization timelines over the span stream.
//!
//! A worker (thread) is *busy* while any of its root spans is open and
//! *idle* otherwise. From the per-thread busy intervals this module
//! derives pool-wide utilization, a concurrency histogram (how long
//! exactly k workers were busy), step samples for a Chrome-trace
//! counter track, and a plain-text Gantt rendering.

use crate::forest::SpanForest;
use std::collections::BTreeMap;

/// One worker's busy timeline.
#[derive(Debug, Clone)]
pub struct WorkerTimeline {
    /// Thread id (matches the trace's `worker-<tid>` rows).
    pub tid: u64,
    /// Merged busy intervals, `[start_us, end_us)`, ascending.
    pub intervals: Vec<(u64, u64)>,
    /// Total busy time in µs.
    pub busy_us: u64,
}

/// Pool-wide utilization derived from a span forest.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    /// Run start (earliest span start).
    pub start_us: u64,
    /// Run end (latest span end).
    pub end_us: u64,
    /// Per-worker timelines, ascending by tid.
    pub workers: Vec<WorkerTimeline>,
    /// Sum of all workers' busy time.
    pub busy_total_us: u64,
    /// `busy_total / (workers × wall)`; 0 when empty.
    pub utilization: f64,
    /// `histogram[k]` = µs during which exactly `k` workers were busy;
    /// indices run 0..=workers and the entries sum to the wall time.
    pub concurrency: Vec<u64>,
    /// Busy-worker-count step samples `(ts_us, value)`, one per
    /// transition plus a closing sample — ready for a Chrome-trace
    /// counter track.
    pub samples: Vec<(u64, u64)>,
}

impl Utilization {
    /// Run wall-clock in µs.
    pub fn wall_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Computes per-worker busy timelines and the concurrency profile.
pub fn utilization(forest: &SpanForest) -> Utilization {
    let mut u =
        Utilization { start_us: forest.start_us, end_us: forest.end_us, ..Default::default() };
    if forest.nodes.is_empty() {
        return u;
    }
    for (&tid, roots) in &forest.roots_by_tid {
        // Roots are in start order; merge touching/overlapping spans.
        let mut intervals: Vec<(u64, u64)> = Vec::new();
        for &r in roots {
            let n = &forest.nodes[r];
            match intervals.last_mut() {
                Some((_, end)) if n.start_us <= *end => *end = (*end).max(n.end_us),
                _ => intervals.push((n.start_us, n.end_us)),
            }
        }
        let busy_us = intervals.iter().map(|(s, e)| e - s).sum();
        u.busy_total_us += busy_us;
        u.workers.push(WorkerTimeline { tid, intervals, busy_us });
    }
    let wall = u.wall_us();
    if wall > 0 && !u.workers.is_empty() {
        u.utilization = u.busy_total_us as f64 / (u.workers.len() as f64 * wall as f64);
    }

    // Concurrency sweep over all busy intervals.
    let mut deltas: BTreeMap<u64, i64> = BTreeMap::new();
    for w in &u.workers {
        for &(s, e) in &w.intervals {
            *deltas.entry(s).or_default() += 1;
            *deltas.entry(e).or_default() -= 1;
        }
    }
    u.concurrency = vec![0; u.workers.len() + 1];
    let mut level = 0i64;
    let mut prev: Option<u64> = None;
    for (&t, &d) in &deltas {
        if let Some(p) = prev {
            u.concurrency[level as usize] += t - p;
        }
        level += d;
        u.samples.push((t, level as u64));
        prev = Some(t);
    }
    // Deduplicate consecutive equal sample values (each transition
    // above may net to the same level) but keep the final sample.
    let end = u.end_us;
    u.samples.dedup_by(|next, prev| next.1 == prev.1 && next.0 != end);
    u
}

impl Utilization {
    /// Plain-text Gantt + summary: one row per worker (`#` ≥ half the
    /// cell busy, `-` partially busy, `.` idle) plus the pool summary
    /// and concurrency histogram.
    pub fn render_text(&self, width: usize) -> String {
        let width = width.max(10);
        let wall = self.wall_us();
        let mut out = String::new();
        out.push_str(&format!(
            "workers {} | wall {} us | busy {} us | utilization {:.1}%\n",
            self.workers.len(),
            wall,
            self.busy_total_us,
            self.utilization * 100.0,
        ));
        if wall == 0 {
            return out;
        }
        out.push_str(&format!(
            "\ngantt ({} cells of {} us; '#' busy, '-' partial, '.' idle):\n",
            width,
            wall.div_ceil(width as u64),
        ));
        for w in &self.workers {
            let mut row = String::with_capacity(width);
            for c in 0..width {
                let lo = self.start_us + wall * c as u64 / width as u64;
                let hi = self.start_us + wall * (c as u64 + 1) / width as u64;
                let cell = hi.saturating_sub(lo).max(1);
                let busy: u64 =
                    w.intervals.iter().map(|&(s, e)| e.min(hi).saturating_sub(s.max(lo))).sum();
                row.push(if busy * 2 >= cell {
                    '#'
                } else if busy > 0 {
                    '-'
                } else {
                    '.'
                });
            }
            let pct = 100.0 * w.busy_us as f64 / wall as f64;
            out.push_str(&format!("  worker-{:<4} {:>5.1}%  |{row}|\n", w.tid, pct));
        }
        out.push_str("\nconcurrency (time at exactly k busy workers):\n");
        for (k, &us) in self.concurrency.iter().enumerate() {
            if us == 0 {
                continue;
            }
            out.push_str(&format!(
                "  k={k:<3} {us:>12} us  {:>5.1}%\n",
                100.0 * us as f64 / wall as f64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_telemetry::SpanEvent;

    fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
    }

    fn fixture() -> SpanForest {
        SpanForest::build(&[
            span("a", 1, 0, 100), // worker 1 busy the whole run
            span("b", 2, 0, 40),  // worker 2 busy [0,40) and [60,100)
            span("c", 2, 60, 40),
            span("nested", 1, 10, 10), // nesting must not double-count
        ])
    }

    #[test]
    fn busy_and_utilization() {
        let u = utilization(&fixture());
        assert_eq!(u.wall_us(), 100);
        assert_eq!(u.workers.len(), 2);
        assert_eq!(u.workers[0].busy_us, 100);
        assert_eq!(u.workers[1].busy_us, 80);
        assert_eq!(u.busy_total_us, 180);
        assert!((u.utilization - 0.9).abs() < 1e-9);
    }

    #[test]
    fn concurrency_histogram_partitions_wall() {
        let u = utilization(&fixture());
        assert_eq!(u.concurrency.iter().sum::<u64>(), u.wall_us());
        assert_eq!(u.concurrency[2], 80, "both busy in [0,40) and [60,100)");
        assert_eq!(u.concurrency[1], 20, "only worker 1 in [40,60)");
        assert_eq!(u.concurrency[0], 0);
    }

    #[test]
    fn samples_step_through_transitions() {
        let u = utilization(&fixture());
        assert_eq!(u.samples, vec![(0, 2), (40, 1), (60, 2), (100, 0)]);
    }

    #[test]
    fn text_rendering_has_gantt_rows_and_histogram() {
        let u = utilization(&fixture());
        let text = u.render_text(20);
        assert!(text.contains("workers 2"));
        assert!(text.contains("worker-1"));
        assert!(text.contains("utilization 90.0%"));
        assert!(text.contains("k=2"));
        let gantt_rows: Vec<&str> =
            text.lines().filter(|l| l.trim_start().starts_with("worker-")).collect();
        assert_eq!(gantt_rows.len(), 2);
        assert!(gantt_rows[0].contains('#'));
        assert!(gantt_rows[1].contains('.'), "worker 2's idle window renders idle");
    }

    #[test]
    fn empty_forest_renders_empty_pool() {
        let u = utilization(&SpanForest::build(&[]));
        assert_eq!(u.wall_us(), 0);
        assert_eq!(u.utilization, 0.0);
        assert!(u.render_text(10).contains("workers 0"));
    }
}
