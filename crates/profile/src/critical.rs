//! Critical-path analysis: the chain of spans that bounds wall-clock.
//!
//! Span streams carry no explicit dependency edges, so the path is
//! computed by a time sweep: the run's wall interval is partitioned at
//! every span boundary, and each elementary slice is charged to the
//! **most recently started** span active in it (ties broken by depth,
//! then end, then thread — deterministic). "Most recently started"
//! picks the actual work over its enclosing coordinator spans and puts
//! stragglers, retries and skewed reducers on the path by name: a map
//! task still running after its siblings finished is the latest
//! dispatch active in that slice. Slices no span covers accrue as
//! idle, so path + idle = wall exactly, and the per-phase blame table
//! partitions the path exactly.

use crate::forest::SpanForest;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One contiguous stretch of the critical path charged to one span.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Index into [`SpanForest::nodes`].
    pub node: usize,
    /// Slice start, µs.
    pub start_us: u64,
    /// Slice end, µs.
    pub end_us: u64,
}

impl Segment {
    /// Slice length in µs.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// The computed critical path of one run.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Chronological, adjacent-merged path segments.
    pub segments: Vec<Segment>,
    /// Run wall-clock (last span end − first span start).
    pub wall_us: u64,
    /// Total time on the path (= wall − idle).
    pub path_us: u64,
    /// Wall-clock no span covered.
    pub idle_us: u64,
    /// Path time per phase, largest first; sums exactly to `path_us`.
    pub blame: Vec<(String, u64)>,
}

/// Compact summary of a run's critical path, cheap enough to hang off
/// per-job statistics (e.g. `bdb_mapreduce::JobStats::critical_path`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPathSummary {
    /// Run wall-clock in µs.
    pub wall_us: u64,
    /// Time on the critical path in µs.
    pub path_us: u64,
    /// `path_us / wall_us` (0 when the stream is empty).
    pub coverage: f64,
    /// The phase charged the most path time.
    pub dominant_phase: String,
    /// Path time charged to the dominant phase, µs.
    pub dominant_phase_us: u64,
    /// Span name of the single longest path segment (the "longest
    /// task").
    pub longest_segment: String,
    /// That segment's length in µs.
    pub longest_segment_us: u64,
}

impl CriticalPathSummary {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "critical path {:.1}% of {} us wall | dominant phase {} ({} us) | longest {} ({} us)",
            self.coverage * 100.0,
            self.wall_us,
            self.dominant_phase,
            self.dominant_phase_us,
            self.longest_segment,
            self.longest_segment_us,
        )
    }
}

/// Maps a span onto the blame-table phase vocabulary: MapReduce span
/// names collapse onto the classic `map`/`spill`/`shuffle`/`reduce`
/// phases, iteration spans (any span carrying an `iter` arg) become
/// `iter-N`, the SQL operators keep the planner's phase names, and
/// anything else blames its own span name.
pub fn phase_of(forest: &SpanForest, node: usize) -> String {
    let n = &forest.nodes[node];
    if let Some(iter) = n.iter {
        return format!("iter-{iter}");
    }
    match n.name {
        "map-task" | "map-phase" => "map".to_owned(),
        "spill" => "spill".to_owned(),
        "shuffle-merge" => "shuffle".to_owned(),
        "reduce-partition" | "reduce-phase" => "reduce".to_owned(),
        "job" => "framework".to_owned(),
        "join-build" => "build".to_owned(),
        "join-probe" => "probe".to_owned(),
        "select-scan" => "scan".to_owned(),
        other => other.to_owned(),
    }
}

/// Sweep key: `max()` of the active set is the span to blame. Start
/// first so the most recently dispatched work wins; depth next so a
/// child beats the parent it shares a start with.
type ActiveKey = (u64, usize, u64, u64, usize);

fn key_of(forest: &SpanForest, node: usize) -> ActiveKey {
    let n = &forest.nodes[node];
    (n.start_us, n.depth, n.end_us, n.tid, node)
}

/// Computes the critical path of a reconstructed span forest.
pub fn critical_path(forest: &SpanForest) -> CriticalPath {
    let mut path = CriticalPath { wall_us: forest.wall_us(), ..Default::default() };
    if forest.nodes.is_empty() {
        return path;
    }

    // Boundary → (starts, ends) at that instant. Zero-length spans
    // start and end on the same boundary and never win a slice.
    let mut boundaries: BTreeMap<u64, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (i, n) in forest.nodes.iter().enumerate() {
        boundaries.entry(n.start_us).or_default().0.push(i);
        boundaries.entry(n.end_us).or_default().1.push(i);
    }

    let mut active: BTreeSet<ActiveKey> = BTreeSet::new();
    let mut blame: BTreeMap<String, u64> = BTreeMap::new();
    let mut prev: Option<u64> = None;
    for (&t, (starts, ends)) in &boundaries {
        if let Some(p) = prev {
            if t > p {
                match active.last() {
                    Some(&(.., node)) => {
                        path.path_us += t - p;
                        *blame.entry(phase_of(forest, node)).or_default() += t - p;
                        match path.segments.last_mut() {
                            Some(seg) if seg.node == node && seg.end_us == p => seg.end_us = t,
                            _ => path.segments.push(Segment { node, start_us: p, end_us: t }),
                        }
                    }
                    None => path.idle_us += t - p,
                }
            }
        }
        for &i in ends {
            active.remove(&key_of(forest, i));
        }
        for &i in starts {
            if forest.nodes[i].end_us > t {
                active.insert(key_of(forest, i));
            }
        }
        prev = Some(t);
    }

    let mut blame: Vec<(String, u64)> = blame.into_iter().collect();
    blame.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    path.blame = blame;
    path
}

impl CriticalPath {
    /// Condenses the path into a [`CriticalPathSummary`].
    pub fn summary(&self, forest: &SpanForest) -> CriticalPathSummary {
        let (dominant_phase, dominant_phase_us) =
            self.blame.first().cloned().unwrap_or_else(|| (String::from("-"), 0));
        let longest = self.segments.iter().max_by_key(|s| (s.dur_us(), s.start_us));
        CriticalPathSummary {
            wall_us: self.wall_us,
            path_us: self.path_us,
            coverage: if self.wall_us == 0 {
                0.0
            } else {
                self.path_us as f64 / self.wall_us as f64
            },
            dominant_phase,
            dominant_phase_us,
            longest_segment: longest
                .map_or_else(|| String::from("-"), |s| forest.nodes[s.node].name.to_owned()),
            longest_segment_us: longest.map_or(0, Segment::dur_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_telemetry::SpanEvent;

    fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
    }

    /// A miniature MapReduce timeline: coordinator spans on thread 1,
    /// tasks on threads 2–3, one straggling map task.
    fn fixture() -> SpanForest {
        SpanForest::build(&[
            span("job", 1, 0, 100),
            span("map-phase", 1, 0, 60),
            span("reduce-phase", 1, 60, 40),
            span("map-task", 2, 5, 20),
            span("map-task", 3, 5, 50), // straggler: alone in (25, 55)
            span("spill", 3, 10, 10),
            span("reduce-partition", 2, 62, 30),
        ])
    }

    #[test]
    fn blame_partitions_the_path_exactly() {
        let f = fixture();
        let cp = critical_path(&f);
        assert_eq!(cp.wall_us, 100);
        assert_eq!(cp.path_us + cp.idle_us, cp.wall_us);
        let blamed: u64 = cp.blame.iter().map(|(_, us)| *us).sum();
        assert_eq!(blamed, cp.path_us, "phase totals partition the path");
        let segs: u64 = cp.segments.iter().map(Segment::dur_us).sum();
        assert_eq!(segs, cp.path_us);
    }

    #[test]
    fn straggler_and_spill_land_on_the_path() {
        let f = fixture();
        let cp = critical_path(&f);
        // [0,5) map-phase, [5,10) map-task, [10,20) spill, [20,55)
        // straggling map-task, [55,60) map-phase, [60,62) reduce-phase,
        // [62,92) reduce-partition, [92,100) reduce-phase.
        let names: Vec<&str> = cp.segments.iter().map(|s| f.nodes[s.node].name).collect();
        assert!(names.contains(&"spill"), "{names:?}");
        assert!(names.contains(&"reduce-partition"), "{names:?}");
        let blame: std::collections::BTreeMap<_, _> = cp.blame.iter().cloned().collect();
        assert_eq!(blame["spill"], 10);
        assert_eq!(blame["map"], 60 - 10, "map-phase + both map-task stretches");
        assert_eq!(blame["reduce"], 40);
        assert_eq!(cp.idle_us, 0, "the job span leaves no gap");
    }

    #[test]
    fn summary_names_dominant_phase_and_longest_segment() {
        let f = fixture();
        let cp = critical_path(&f);
        let s = cp.summary(&f);
        assert_eq!(s.dominant_phase, "map");
        assert!((s.coverage - 1.0).abs() < 1e-9);
        assert_eq!(s.longest_segment, "map-task", "the straggler's lone stretch is longest");
        assert_eq!(s.longest_segment_us, 35);
        assert!(s.render().contains("dominant phase map"));
    }

    #[test]
    fn gaps_accrue_as_idle() {
        let f = SpanForest::build(&[span("a", 1, 0, 10), span("b", 1, 30, 10)]);
        let cp = critical_path(&f);
        assert_eq!(cp.wall_us, 40);
        assert_eq!(cp.path_us, 20);
        assert_eq!(cp.idle_us, 20);
    }

    #[test]
    fn iteration_spans_blame_iter_n() {
        let mut e1 = span("pagerank-iteration", 1, 0, 10);
        e1.args.push(("iter", bdb_telemetry::ArgValue::Int(1)));
        let mut e2 = span("pagerank-iteration", 1, 10, 30);
        e2.args.push(("iter", bdb_telemetry::ArgValue::Int(2)));
        let f = SpanForest::build(&[e1, e2]);
        let cp = critical_path(&f);
        assert_eq!(cp.blame[0], ("iter-2".to_owned(), 30));
        assert_eq!(cp.blame[1], ("iter-1".to_owned(), 10));
    }

    #[test]
    fn empty_forest_is_empty_path() {
        let cp = critical_path(&SpanForest::build(&[]));
        assert_eq!(cp.wall_us, 0);
        assert!(cp.segments.is_empty());
        let s = cp.summary(&SpanForest::build(&[]));
        assert_eq!(s.coverage, 0.0);
    }
}
