//! # bdb-profile — post-hoc profiling over the telemetry span stream
//!
//! The suite's engines emit flat [`SpanEvent`] streams through
//! `bdb-telemetry`. This crate turns one run's stream into three
//! artifacts, with no dependencies beyond the telemetry substrate:
//!
//! * **Critical path** ([`critical_path`]): the chain of spans that
//!   bounds wall-clock, with a blame table attributing path time to
//!   phases (`map`/`spill`/`shuffle`/`reduce`, `iter-N`,
//!   `build`/`probe`). `path + idle = wall` exactly.
//! * **Folded flamegraph** ([`folded_stacks`]): collapsed-stack text
//!   that `inferno-flamegraph`, `flamegraph.pl` and speedscope render
//!   directly, weighted by self time.
//! * **Worker utilization** ([`utilization`]): per-thread busy/idle
//!   timelines, pool utilization, a concurrency histogram, and counter
//!   samples ready for a Chrome-trace counter track.
//!
//! [`Profile`] bundles all three for the common "analyze one run"
//! path (feed it [`SpanRecorder::events`] in production):
//!
//! ```
//! use bdb_telemetry::SpanEvent;
//!
//! let span = |name, start_us, dur_us| SpanEvent {
//!     name, cat: "demo", start_us, dur_us: Some(dur_us), tid: 1, args: Vec::new(),
//! };
//! let profile =
//!     bdb_profile::Profile::from_events(&[span("job", 0, 100), span("map-task", 10, 80)]);
//! assert!(profile.folded().contains("map-task"));
//! assert!(profile.critpath_text().contains("critical path"));
//! ```
//!
//! [`SpanRecorder::events`]: bdb_telemetry::SpanRecorder::events

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical;
pub mod flame;
pub mod forest;
pub mod util;

pub use critical::{critical_path, phase_of, CriticalPath, CriticalPathSummary, Segment};
pub use flame::folded_stacks;
pub use forest::{SpanForest, SpanNode};
pub use util::{utilization, Utilization, WorkerTimeline};

use bdb_telemetry::{CounterTrack, SpanEvent};

/// Default Gantt width (cells) for [`Profile::util_text`].
const GANTT_WIDTH: usize = 60;

/// One run's full profile: forest, critical path, and utilization,
/// computed once and rendered on demand.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The reconstructed span forest.
    pub forest: SpanForest,
    /// The critical path over it.
    pub critical: CriticalPath,
    /// Per-worker utilization over it.
    pub utilization: Utilization,
}

impl Profile {
    /// Analyzes one run's span-event snapshot.
    pub fn from_events(events: &[SpanEvent]) -> Self {
        let forest = SpanForest::build(events);
        let critical = critical_path(&forest);
        let utilization = utilization(&forest);
        Profile { forest, critical, utilization }
    }

    /// Collapsed-stack flamegraph text (see [`folded_stacks`]).
    pub fn folded(&self) -> String {
        folded_stacks(&self.forest)
    }

    /// Condensed critical-path summary for per-job statistics.
    pub fn critical_summary(&self) -> CriticalPathSummary {
        self.critical.summary(&self.forest)
    }

    /// Busy-worker-count counter track for the Chrome trace.
    pub fn concurrency_track(&self) -> CounterTrack {
        CounterTrack { name: "busy workers".to_owned(), samples: self.utilization.samples.clone() }
    }

    /// Human-readable critical-path report: headline, blame table, and
    /// the chronological path segments.
    pub fn critpath_text(&self) -> String {
        let cp = &self.critical;
        let s = self.critical_summary();
        let mut out = String::new();
        out.push_str(&format!("{}\n", s.render()));
        out.push_str(&format!(
            "wall {} us | path {} us | idle {} us | spans {} ({} skipped without duration)\n",
            cp.wall_us,
            cp.path_us,
            cp.idle_us,
            self.forest.nodes.len(),
            self.forest.skipped,
        ));
        out.push_str("\nblame (critical-path time per phase):\n");
        for (phase, us) in &cp.blame {
            let pct = if cp.path_us == 0 { 0.0 } else { 100.0 * *us as f64 / cp.path_us as f64 };
            out.push_str(&format!("  {phase:<24} {us:>12} us  {pct:>5.1}%\n"));
        }
        out.push_str("\nsegments (chronological):\n");
        for seg in &cp.segments {
            let n = &self.forest.nodes[seg.node];
            out.push_str(&format!(
                "  [{:>10}, {:>10}) {:>10} us  tid {:<4} {:<24} phase {}\n",
                seg.start_us,
                seg.end_us,
                seg.dur_us(),
                n.tid,
                n.name,
                phase_of(&self.forest, seg.node),
            ));
        }
        out
    }

    /// Utilization report (pool summary, Gantt, concurrency histogram).
    pub fn util_text(&self) -> String {
        self.utilization.render_text(GANTT_WIDTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
    }

    fn profile() -> Profile {
        Profile::from_events(&[
            span("job", 1, 0, 100),
            span("map-phase", 1, 0, 60),
            span("reduce-phase", 1, 60, 40),
            span("map-task", 2, 5, 50),
        ])
    }

    #[test]
    fn all_three_artifacts_render() {
        let p = profile();
        assert!(p.folded().contains("worker-2;map-task 50\n"));
        let crit = p.critpath_text();
        assert!(crit.contains("critical path 100.0%"), "{crit}");
        assert!(crit.contains("blame"), "{crit}");
        assert!(crit.contains("segments"), "{crit}");
        assert!(p.util_text().contains("workers 2"));
    }

    #[test]
    fn concurrency_track_mirrors_utilization_samples() {
        let p = profile();
        let track = p.concurrency_track();
        assert_eq!(track.name, "busy workers");
        assert_eq!(track.samples, p.utilization.samples);
        assert_eq!(track.samples.last(), Some(&(100, 0)), "closes at zero");
    }

    #[test]
    fn empty_stream_yields_empty_but_valid_reports() {
        let p = Profile::from_events(&[]);
        assert_eq!(p.folded(), "");
        assert!(p.critpath_text().contains("wall 0 us"));
        assert!(p.util_text().contains("workers 0"));
        assert!(p.concurrency_track().samples.is_empty());
    }
}
