//! Collapsed-stack ("folded") flamegraph export.
//!
//! One line per distinct span stack, `frame;frame;... weight`, the
//! format `inferno-flamegraph`, `flamegraph.pl` and speedscope all
//! consume. Frames are span names rooted at a `worker-<tid>` frame so
//! each thread renders as its own tower; weights are **self** time in
//! µs, so a stack's total width equals its spans' wall time without
//! double-counting children.

use crate::forest::SpanForest;
use std::collections::BTreeMap;

/// Renders the forest as folded stacks, lines sorted lexicographically
/// (deterministic for golden tests). Zero-self-time stacks are
/// omitted; the result ends with a newline unless empty.
pub fn folded_stacks(forest: &SpanForest) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for (&tid, roots) in &forest.roots_by_tid {
        let mut frames = vec![format!("worker-{tid}")];
        for &root in roots {
            fold(forest, root, &mut frames, &mut weights);
        }
    }
    let mut out = String::new();
    for (stack, weight) in weights {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

fn fold(
    forest: &SpanForest,
    node: usize,
    frames: &mut Vec<String>,
    weights: &mut BTreeMap<String, u64>,
) {
    let n = &forest.nodes[node];
    frames.push(n.name.to_owned());
    if n.self_us > 0 {
        *weights.entry(frames.join(";")).or_default() += n.self_us;
    }
    for &c in &n.children {
        fold(forest, c, frames, weights);
    }
    frames.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_telemetry::SpanEvent;

    fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
    }

    #[test]
    fn folded_output_is_deterministic_and_self_weighted() {
        let f = SpanForest::build(&[
            span("job", 1, 0, 100),
            span("map-phase", 1, 0, 60),
            span("reduce-phase", 1, 60, 40),
            span("map-task", 2, 5, 45),
            span("spill", 2, 20, 10),
        ]);
        let folded = folded_stacks(&f);
        assert_eq!(
            folded,
            "worker-1;job;map-phase 60\n\
             worker-1;job;reduce-phase 40\n\
             worker-2;map-task 35\n\
             worker-2;map-task;spill 10\n",
            "job has zero self time and is omitted"
        );
        // Every line parses as `stack weight`.
        for line in folded.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            weight.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn repeated_stacks_aggregate() {
        let f = SpanForest::build(&[
            span("iter", 1, 0, 10),
            span("iter", 1, 10, 15),
            span("iter", 1, 25, 5),
        ]);
        assert_eq!(folded_stacks(&f), "worker-1;iter 30\n");
    }

    #[test]
    fn empty_forest_folds_to_nothing() {
        assert_eq!(folded_stacks(&SpanForest::build(&[])), "");
    }
}
