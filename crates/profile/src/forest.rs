//! Span-forest reconstruction from the flat [`SpanEvent`] stream.
//!
//! The recorder emits spans flat, one per RAII-guard drop, tagged with
//! the recording thread. This module rebuilds the per-thread nesting
//! (a forest per thread) by time containment, the shape every analysis
//! in this crate — critical path, folded stacks, utilization — works
//! over. Events without a duration (instant markers, or spans left
//! unclosed by a crash) are counted and skipped, never unwrapped.

use bdb_telemetry::{ArgValue, SpanEvent};
use std::collections::BTreeMap;

/// One reconstructed span with its nesting links resolved.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `"map-task"`.
    pub name: &'static str,
    /// Category, by convention the subsystem.
    pub cat: &'static str,
    /// Recording thread.
    pub tid: u64,
    /// Start, µs since the recorder epoch.
    pub start_us: u64,
    /// End (start + duration).
    pub end_us: u64,
    /// Nesting depth within its thread (roots are 0).
    pub depth: usize,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<usize>,
    /// Directly nested spans, in start order.
    pub children: Vec<usize>,
    /// Time not covered by any child, in µs (flamegraph weight).
    pub self_us: u64,
    /// The `iter` argument, when the span carries one (iteration
    /// spans); used for `iter-N` phase attribution.
    pub iter: Option<i64>,
}

impl SpanNode {
    /// Total span duration in µs.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// The reconstructed per-thread span forest of one run.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// All closed spans; indices are stable handles.
    pub nodes: Vec<SpanNode>,
    /// Root span indices per thread, in start order.
    pub roots_by_tid: BTreeMap<u64, Vec<usize>>,
    /// Earliest span start (0 when empty).
    pub start_us: u64,
    /// Latest span end (0 when empty).
    pub end_us: u64,
    /// Events skipped because they carry no duration — instants, or
    /// spans a crash left unclosed.
    pub skipped: usize,
}

impl SpanForest {
    /// Rebuilds the forest from a recorder's event snapshot.
    ///
    /// Containment rule: on each thread a span is a child of the
    /// nearest earlier-started span whose interval encloses it;
    /// partially overlapping spans (which a well-formed RAII stream
    /// never produces) degrade to siblings rather than being dropped.
    pub fn build(events: &[SpanEvent]) -> Self {
        let mut skipped = 0usize;
        // (tid, start, end, original index) — the original index breaks
        // ties for identical intervals: the guard recorded later is the
        // *outer* span (inner guards drop first), so it must sort first
        // to become the parent.
        let mut closed: Vec<(usize, &SpanEvent, u64)> = Vec::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            match e.dur_us {
                Some(dur) => closed.push((i, e, e.start_us + dur)),
                None => skipped += 1,
            }
        }
        closed.sort_by(|(ia, a, ea), (ib, b, eb)| {
            (a.tid, a.start_us, std::cmp::Reverse(*ea), std::cmp::Reverse(*ia)).cmp(&(
                b.tid,
                b.start_us,
                std::cmp::Reverse(*eb),
                std::cmp::Reverse(*ib),
            ))
        });

        let mut forest = SpanForest { skipped, ..Default::default() };
        let mut stack: Vec<usize> = Vec::new(); // open ancestors, current thread
        let mut current_tid = None;
        for (_, e, end_us) in closed {
            if current_tid != Some(e.tid) {
                stack.clear();
                current_tid = Some(e.tid);
            }
            // Pop ancestors that cannot enclose this span. Thanks to
            // the start-ascending sort, enclosure reduces to the end
            // bound; `<` keeps spans sharing an end nested.
            while let Some(&top) = stack.last() {
                if forest.nodes[top].end_us < end_us || forest.nodes[top].end_us <= e.start_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent = stack.last().copied();
            let idx = forest.nodes.len();
            let iter = e.args.iter().find_map(|(k, v)| match (*k, v) {
                ("iter", ArgValue::Int(i)) => Some(*i),
                _ => None,
            });
            forest.nodes.push(SpanNode {
                name: e.name,
                cat: e.cat,
                tid: e.tid,
                start_us: e.start_us,
                end_us,
                depth: parent.map_or(0, |p| forest.nodes[p].depth + 1),
                parent,
                children: Vec::new(),
                self_us: 0,
                iter,
            });
            match parent {
                Some(p) => forest.nodes[p].children.push(idx),
                None => forest.roots_by_tid.entry(e.tid).or_default().push(idx),
            }
            stack.push(idx);
        }

        if let (Some(min), Some(max)) = (
            forest.nodes.iter().map(|n| n.start_us).min(),
            forest.nodes.iter().map(|n| n.end_us).max(),
        ) {
            forest.start_us = min;
            forest.end_us = max;
        }
        forest.compute_self_times();
        forest
    }

    /// Self time = duration minus the interval union of the children,
    /// clipped to the span (robust even if children overlap).
    fn compute_self_times(&mut self) {
        for i in 0..self.nodes.len() {
            let n = &self.nodes[i];
            let mut covered = 0u64;
            let mut cursor = n.start_us;
            for &c in &n.children {
                let child = &self.nodes[c];
                let lo = child.start_us.clamp(cursor, n.end_us);
                let hi = child.end_us.clamp(cursor, n.end_us);
                covered += hi - lo;
                cursor = cursor.max(hi);
            }
            self.nodes[i].self_us = n.total_us().saturating_sub(covered);
        }
    }

    /// Total wall-clock covered by the stream (0 when empty).
    pub fn wall_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
    }

    #[test]
    fn nesting_by_containment() {
        let events = vec![
            span("inner", 1, 10, 20),
            span("outer", 1, 0, 100),
            span("leaf", 1, 12, 5),
            span("other-thread", 2, 0, 50),
        ];
        let f = SpanForest::build(&events);
        assert_eq!(f.nodes.len(), 4);
        let outer = f.nodes.iter().position(|n| n.name == "outer").unwrap();
        let inner = f.nodes.iter().position(|n| n.name == "inner").unwrap();
        let leaf = f.nodes.iter().position(|n| n.name == "leaf").unwrap();
        assert_eq!(f.nodes[inner].parent, Some(outer));
        assert_eq!(f.nodes[leaf].parent, Some(inner));
        assert_eq!(f.nodes[leaf].depth, 2);
        assert_eq!(f.roots_by_tid[&1], vec![outer]);
        assert_eq!(f.roots_by_tid[&2].len(), 1);
        assert_eq!(f.wall_us(), 100);
    }

    #[test]
    fn self_time_subtracts_children() {
        let events = vec![span("parent", 1, 0, 100), span("a", 1, 10, 30), span("b", 1, 50, 20)];
        let f = SpanForest::build(&events);
        let parent = f.nodes.iter().position(|n| n.name == "parent").unwrap();
        assert_eq!(f.nodes[parent].self_us, 50);
        let a = f.nodes.iter().position(|n| n.name == "a").unwrap();
        assert_eq!(f.nodes[a].self_us, 30, "leaves keep their full duration");
    }

    #[test]
    fn instants_and_unclosed_spans_are_skipped_not_unwrapped() {
        let mut open = span("unclosed", 1, 5, 0);
        open.dur_us = None; // an instant, or a span a crash never closed
        let events = vec![span("work", 1, 0, 50), open];
        let f = SpanForest::build(&events);
        assert_eq!(f.nodes.len(), 1);
        assert_eq!(f.skipped, 1);
    }

    #[test]
    fn identical_intervals_nest_by_record_order() {
        // Inner guards drop first, so for identical intervals the
        // earlier event is the inner span.
        let events = vec![span("inner", 1, 0, 10), span("outer", 1, 0, 10)];
        let f = SpanForest::build(&events);
        let outer = f.nodes.iter().position(|n| n.name == "outer").unwrap();
        let inner = f.nodes.iter().position(|n| n.name == "inner").unwrap();
        assert_eq!(f.nodes[inner].parent, Some(outer));
    }

    #[test]
    fn empty_stream_is_fine() {
        let f = SpanForest::build(&[]);
        assert!(f.nodes.is_empty());
        assert_eq!(f.wall_us(), 0);
    }

    #[test]
    fn iteration_arg_is_captured() {
        let mut e = span("pagerank-iteration", 1, 0, 10);
        e.args.push(("iter", ArgValue::Int(3)));
        let f = SpanForest::build(&[e]);
        assert_eq!(f.nodes[0].iter, Some(3));
    }
}
