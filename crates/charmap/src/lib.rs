//! # bdb-charmap — workload characterization, PCA + clustering, and
//! representative-subset selection
//!
//! Reproduces the analysis pipeline of Jia et al., *"Characterizing
//! and Subsetting Big Data Workloads"* (IISWC'14), on top of archsim's
//! simulated counters instead of real PMU data:
//!
//! 1. every benchmarked workload is summarized as one fixed, documented
//!    **metric vector** ([`MetricVector`]; base features from
//!    `bdb_archsim::BASE_FEATURES` plus phase-weighted derived ratios);
//! 2. vectors are **z-score normalized** and reduced with **PCA**
//!    (Jacobi eigendecomposition of the covariance matrix, no external
//!    linear-algebra crate), retaining the minimal leading components
//!    covering at least [`VARIANCE_TARGET`] of total variance;
//! 3. **seeded k-means** clusters the workloads in the reduced space,
//!    with `k` swept and chosen by mean silhouette (the paper uses
//!    BIC; both pick the knee of the same tradeoff) and single-linkage
//!    hierarchical clustering as an agreement cross-check;
//! 4. the workload **nearest each centroid** becomes that cluster's
//!    representative; the representatives form the committed subset
//!    that `ci.sh --subset` runs as the cheap per-PR regression gate.
//!
//! The whole pipeline is deterministic and permutation-invariant for a
//! fixed seed (see [`cluster`]), which is what makes the subset safe
//! to commit. [`Charmap::to_json`] / [`Charmap::to_text`] render the
//! artifact pair (`charmap.json`, `charmap.txt`), and
//! [`report::validate_baseline`] enforces the **subset stability
//! rule** the full CI gate uses (see that function's docs).
//!
//! ```
//! use bdb_charmap::{analyze, AnalysisInput, MetricVector, DEFAULT_SEED};
//!
//! let input = AnalysisInput {
//!     machine: "Xeon E5645".into(),
//!     fraction: 1.0,
//!     features: vec!["ipc".into(), "l2_mpki".into()],
//!     vectors: vec![
//!         MetricVector { name: "A".into(), values: vec![1.9, 2.0] },
//!         MetricVector { name: "B".into(), values: vec![2.0, 2.1] },
//!         MetricVector { name: "C".into(), values: vec![0.3, 30.0] },
//!         MetricVector { name: "D".into(), values: vec![0.2, 31.0] },
//!     ],
//! };
//! let map = analyze(&input, DEFAULT_SEED).unwrap();
//! assert!(map.variance_retained >= 0.85);
//! assert_eq!(map.subset.len(), map.k);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod json;
pub mod pca;
pub mod report;

pub use cluster::{kmeans, rand_index, silhouette, single_linkage, KMeansResult};
pub use pca::{covariance, jacobi_eigen, zscore, Pca};
pub use report::validate_baseline;

/// Seed for the committed artifact; changing it regenerates a
/// different (equally valid) subset, so treat it like a schema field.
pub const DEFAULT_SEED: u64 = 42;

/// Minimum share of total variance the retained components must cover
/// (the paper keeps components to ~85–90%).
pub const VARIANCE_TARGET: f64 = 0.85;

/// Artifact schema version; bump on incompatible layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Most clusters the k sweep will consider (besides `n - 1`).
const MAX_K: usize = 6;

/// One workload's metric vector: a name plus one value per feature of
/// the enclosing [`AnalysisInput::features`] list.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVector {
    /// Workload name (Table 6 spelling).
    pub name: String,
    /// Feature values, aligned with [`AnalysisInput::features`].
    pub values: Vec<f64>,
}

/// Everything [`analyze`] needs: provenance plus the feature matrix.
#[derive(Debug, Clone)]
pub struct AnalysisInput {
    /// Simulated machine the vectors were measured on.
    pub machine: String,
    /// Input-scale fraction of the runs.
    pub fraction: f64,
    /// Feature names, one per vector column.
    pub features: Vec<String>,
    /// Per-workload vectors; at least 3, consistent widths.
    pub vectors: Vec<MetricVector>,
}

/// One cluster of the final partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Member workload names, sorted.
    pub members: Vec<String>,
    /// The member nearest the centroid — the cluster's representative.
    pub representative: String,
}

/// The full characterization result — everything both emitters and the
/// CI validation need.
#[derive(Debug, Clone)]
pub struct Charmap {
    /// Simulated machine the vectors were measured on.
    pub machine: String,
    /// Input-scale fraction of the runs.
    pub fraction: f64,
    /// Clustering seed.
    pub seed: u64,
    /// Feature names, one per column.
    pub features: Vec<String>,
    /// Workload names in analysis (sorted) order.
    pub workloads: Vec<String>,
    /// Eigenvalues of the standardized covariance matrix, descending.
    pub eigenvalues: Vec<f64>,
    /// Each component's share of total variance.
    pub variance_shares: Vec<f64>,
    /// Number of leading components retained.
    pub retained: usize,
    /// Variance covered by the retained components (≥ the target).
    pub variance_retained: f64,
    /// Retained components as rows of per-feature loadings.
    pub loadings: Vec<Vec<f64>>,
    /// PCA-space scores per workload (n × retained).
    pub scores: Vec<Vec<f64>>,
    /// Chosen cluster count.
    pub k: usize,
    /// Mean silhouette of the chosen partition.
    pub silhouette: f64,
    /// The silhouette sweep: `(k, score)` per candidate.
    pub silhouette_by_k: Vec<(usize, f64)>,
    /// Rand-index agreement between k-means and single-linkage at `k`.
    pub hier_agreement: f64,
    /// Cluster index per workload (aligned with `workloads`).
    pub assignments: Vec<usize>,
    /// The clusters, labeled in order of each cluster's first member.
    pub clusters: Vec<Cluster>,
    /// The representative subset, sorted by workload name.
    pub subset: Vec<String>,
    /// Pairwise Euclidean distances in PCA space (n × n, symmetric).
    pub distances: Vec<Vec<f64>>,
}

/// Runs the full pipeline over `input` with `seed`.
///
/// Vectors are sorted by name first, so the result is independent of
/// the caller's ordering; combined with the permutation-invariant
/// clustering this makes the artifact a pure function of the metric
/// values and the seed.
///
/// # Errors
///
/// Returns an explanation for malformed input: fewer than 3 vectors,
/// ragged or feature-mismatched widths, duplicate or empty names,
/// non-finite values, or a degenerate (zero-variance) matrix.
pub fn analyze(input: &AnalysisInput, seed: u64) -> Result<Charmap, String> {
    if input.vectors.len() < 3 {
        return Err(format!("need at least 3 workload vectors, got {}", input.vectors.len()));
    }
    let p = input.features.len();
    for v in &input.vectors {
        if v.name.is_empty() {
            return Err("workload names must be non-empty".to_owned());
        }
        if v.values.len() != p {
            return Err(format!("workload {}: {} values for {p} features", v.name, v.values.len()));
        }
        if let Some(bad) = v.values.iter().position(|x| !x.is_finite()) {
            return Err(format!(
                "workload {}: feature {} ({}) is not finite",
                v.name, bad, input.features[bad]
            ));
        }
    }
    let mut vectors: Vec<&MetricVector> = input.vectors.iter().collect();
    vectors.sort_by(|a, b| a.name.cmp(&b.name));
    if vectors.windows(2).any(|w| w[0].name == w[1].name) {
        return Err("duplicate workload names".to_owned());
    }
    let workloads: Vec<String> = vectors.iter().map(|v| v.name.clone()).collect();
    let rows: Vec<Vec<f64>> = vectors.iter().map(|v| v.values.clone()).collect();

    let (z, _) = pca::zscore(&rows);
    let fitted = Pca::fit(&z, VARIANCE_TARGET)?;
    let scores = fitted.project(&z);

    let n = workloads.len();
    let candidates: Vec<usize> = (2..=(n - 1).min(MAX_K)).collect();
    let (best, silhouette_by_k) = cluster::sweep_k(&scores, &candidates, seed);
    let hier = cluster::single_linkage(&scores, best.k, seed);
    let hier_agreement = cluster::rand_index(&best.assignments, &hier);

    // Relabel clusters by first appearance over the name-sorted rows so
    // labels (and the JSON) are stable regardless of centroid order.
    let mut relabel: Vec<Option<usize>> = vec![None; best.k];
    let mut next = 0usize;
    for &a in &best.assignments {
        if relabel[a].is_none() {
            relabel[a] = Some(next);
            next += 1;
        }
    }
    let assignments: Vec<usize> =
        best.assignments.iter().map(|&a| relabel[a].expect("labeled")).collect();

    let mut clusters = Vec::with_capacity(best.k);
    for label in 0..best.k {
        let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == label).collect();
        let original = best.assignments[members[0]];
        let centroid = &best.centroids[original];
        let repr = members
            .iter()
            .copied()
            .min_by(|&x, &y| {
                cluster::distance(&scores[x], centroid)
                    .total_cmp(&cluster::distance(&scores[y], centroid))
                    .then_with(|| workloads[x].cmp(&workloads[y]))
            })
            .expect("non-empty cluster");
        clusters.push(Cluster {
            members: members.iter().map(|&i| workloads[i].clone()).collect(),
            representative: workloads[repr].clone(),
        });
    }
    let mut subset: Vec<String> = clusters.iter().map(|c| c.representative.clone()).collect();
    subset.sort();

    let distances: Vec<Vec<f64>> =
        scores.iter().map(|a| scores.iter().map(|b| cluster::distance(a, b)).collect()).collect();
    let mean_silhouette = cluster::silhouette(&scores, &assignments, best.k);

    Ok(Charmap {
        machine: input.machine.clone(),
        fraction: input.fraction,
        seed,
        features: input.features.clone(),
        workloads,
        eigenvalues: fitted.eigenvalues,
        variance_shares: fitted.variance_shares,
        retained: fitted.retained,
        variance_retained: fitted.variance_retained,
        loadings: fitted.components[..fitted.retained].to_vec(),
        scores,
        k: best.k,
        silhouette: mean_silhouette,
        silhouette_by_k,
        hier_agreement,
        assignments,
        clusters,
        subset,
        distances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eight synthetic "workloads" in three obvious families.
    pub(crate) fn fixture() -> AnalysisInput {
        let mk = |name: &str, ipc: f64, l2: f64, fp: f64| MetricVector {
            name: name.into(),
            values: vec![ipc, l2, fp, ipc * 2.0, 7.0],
        };
        AnalysisInput {
            machine: "Xeon E5645".into(),
            fraction: 0.02,
            features: vec![
                "ipc".into(),
                "l2_mpki".into(),
                "fp_frac".into(),
                "mips".into(),
                "constant".into(),
            ],
            vectors: vec![
                mk("WordCount", 1.30, 9.5, 0.001),
                mk("Grep", 1.25, 9.9, 0.002),
                mk("Sort", 0.30, 27.0, 0.001),
                mk("Scan", 0.33, 26.0, 0.002),
                mk("K-means", 1.05, 10.9, 0.076),
                mk("PageRank", 1.06, 12.1, 0.010),
                mk("Join Query", 0.95, 15.5, 0.002),
                mk("Read", 0.90, 16.0, 0.003),
            ],
        }
    }

    #[test]
    fn analyze_end_to_end_on_fixture() {
        let map = analyze(&fixture(), DEFAULT_SEED).expect("analyzes");
        assert_eq!(map.workloads.len(), 8);
        assert!(map.variance_retained >= VARIANCE_TARGET);
        assert!(map.retained >= 1);
        assert_eq!(map.subset.len(), map.k);
        assert_eq!(map.clusters.len(), map.k);
        // Every workload belongs to exactly one cluster.
        let all: Vec<&String> = map.clusters.iter().flat_map(|c| c.members.iter()).collect();
        assert_eq!(all.len(), 8);
        // Representatives are members of their own cluster.
        for c in &map.clusters {
            assert!(c.members.contains(&c.representative));
        }
        // Workloads are analyzed in sorted order for stable output.
        let mut sorted = map.workloads.clone();
        sorted.sort();
        assert_eq!(map.workloads, sorted);
    }

    #[test]
    fn analysis_is_independent_of_input_order() {
        let input = fixture();
        let mut shuffled = input.clone();
        shuffled.vectors.reverse();
        shuffled.vectors.swap(1, 4);
        let a = analyze(&input, DEFAULT_SEED).unwrap();
        let b = analyze(&shuffled, DEFAULT_SEED).unwrap();
        assert_eq!(a.subset, b.subset);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn malformed_inputs_are_rejected_with_reasons() {
        let mut two = fixture();
        two.vectors.truncate(2);
        assert!(analyze(&two, 1).unwrap_err().contains("at least 3"));

        let mut ragged = fixture();
        ragged.vectors[1].values.pop();
        assert!(analyze(&ragged, 1).unwrap_err().contains("values for"));

        let mut dup = fixture();
        dup.vectors[1].name = dup.vectors[0].name.clone();
        assert!(analyze(&dup, 1).unwrap_err().contains("duplicate"));

        let mut nan = fixture();
        nan.vectors[2].values[1] = f64::NAN;
        assert!(analyze(&nan, 1).unwrap_err().contains("not finite"));
    }
}
