//! Z-score normalization and principal component analysis via cyclic
//! Jacobi eigendecomposition of the covariance matrix.
//!
//! The paper's pipeline standardizes each metric to zero mean and unit
//! variance before PCA so that high-magnitude counters (MIPS) do not
//! drown out fractions (instruction mix). On standardized data the
//! covariance matrix is the correlation matrix; its eigenvectors are
//! the principal components and the eigenvalue shares are the variance
//! each component explains.

/// Convergence threshold for the off-diagonal Frobenius norm.
const JACOBI_EPS: f64 = 1e-12;
/// Upper bound on Jacobi sweeps; symmetric matrices of the sizes used
/// here (tens of features) converge in well under ten.
const MAX_SWEEPS: usize = 64;

/// Per-column standardization parameters, kept so loadings can be
/// mapped back to raw metric units.
#[derive(Debug, Clone)]
pub struct ZScore {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column population standard deviations (0 for constant columns).
    pub std: Vec<f64>,
}

/// Standardizes `rows` (n samples × p features) column-wise to zero
/// mean and unit variance. Constant columns map to all-zero columns
/// (they carry no information to distribute over components).
///
/// # Panics
///
/// Panics if rows are ragged.
pub fn zscore(rows: &[Vec<f64>]) -> (Vec<Vec<f64>>, ZScore) {
    let n = rows.len();
    let p = rows.first().map_or(0, Vec::len);
    assert!(rows.iter().all(|r| r.len() == p), "ragged feature matrix");
    let mut mean = vec![0.0; p];
    for row in rows {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n.max(1) as f64;
    }
    let mut var = vec![0.0; p];
    for row in rows {
        for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    let std: Vec<f64> = var.iter().map(|s| (s / n.max(1) as f64).sqrt()).collect();
    let z = rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(&mean)
                .zip(&std)
                .map(|((v, m), s)| if *s > 0.0 { (v - m) / s } else { 0.0 })
                .collect()
        })
        .collect();
    (z, ZScore { mean, std })
}

/// The covariance matrix of standardized `z` (n × p), normalized by
/// `n - 1`. Returns a p × p symmetric matrix.
pub fn covariance(z: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = z.len();
    let p = z.first().map_or(0, Vec::len);
    let denom = (n.saturating_sub(1)).max(1) as f64;
    let mut cov = vec![vec![0.0; p]; p];
    for row in z {
        for i in 0..p {
            for j in i..p {
                cov[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        let (upper, lower) = cov.split_at_mut(i + 1);
        let row_i = &mut upper[i];
        row_i[i] /= denom;
        for (row_j, j) in lower.iter_mut().zip(i + 1..) {
            row_i[j] /= denom;
            row_j[i] = row_i[j];
        }
    }
    cov
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method: returns `(eigenvalues, eigenvectors)` sorted by descending
/// eigenvalue, eigenvectors as rows (each of length p, orthonormal).
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let p = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    // v accumulates the rotations; starts as the identity.
    let mut v = vec![vec![0.0; p]; p];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..p)
            .flat_map(|i| (i + 1..p).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j].powi(2))
            .sum();
        if off.sqrt() < JACOBI_EPS {
            break;
        }
        for i in 0..p {
            for j in i + 1..p {
                if a[i][j].abs() < JACOBI_EPS / (p.max(1) as f64) {
                    continue;
                }
                // Classic symmetric Schur decomposition of the 2x2 block.
                let tau = (a[j][j] - a[i][i]) / (2.0 * a[i][j]);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let (head, tail) = a.split_at_mut(j);
                for (aik, ajk) in head[i].iter_mut().zip(tail[0].iter_mut()) {
                    let (x, y) = (*aik, *ajk);
                    *aik = c * x - s * y;
                    *ajk = s * x + c * y;
                }
                for row in a.iter_mut() {
                    let aki = row[i];
                    let akj = row[j];
                    row[i] = c * aki - s * akj;
                    row[j] = s * aki + c * akj;
                }
                for row in v.iter_mut() {
                    let vki = row[i];
                    let vkj = row[j];
                    row[i] = c * vki - s * vkj;
                    row[j] = s * vki + c * vkj;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&x, &y| a[y][y].total_cmp(&a[x][x]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    // Eigenvector for column i of v, returned as a row; the sign is
    // canonicalized so the largest-magnitude entry is positive (Jacobi
    // rotation order must not flip loadings between runs).
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| {
            let mut vec: Vec<f64> = v.iter().map(|row| row[col]).collect();
            let lead =
                vec.iter().copied().max_by(|x, y| x.abs().total_cmp(&y.abs())).unwrap_or(1.0);
            if lead < 0.0 {
                for x in &mut vec {
                    *x = -*x;
                }
            }
            vec
        })
        .collect();
    (eigenvalues, eigenvectors)
}

/// The result of a PCA pass over a standardized feature matrix.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues, descending. Tiny negative values (Jacobi round-off)
    /// are clamped to zero.
    pub eigenvalues: Vec<f64>,
    /// Principal components as rows of feature loadings; orthonormal.
    /// `components[c][f]` is feature `f`'s loading on component `c`.
    pub components: Vec<Vec<f64>>,
    /// Each component's share of total variance (sums to 1).
    pub variance_shares: Vec<f64>,
    /// How many leading components are retained.
    pub retained: usize,
    /// Variance covered by the retained components (0..=1).
    pub variance_retained: f64,
}

impl Pca {
    /// Runs PCA over standardized rows and retains the minimal prefix
    /// of components covering at least `target` of total variance.
    ///
    /// # Errors
    ///
    /// Returns an error when the data carries no variance at all
    /// (fewer than two samples, or every feature constant).
    pub fn fit(z: &[Vec<f64>], target: f64) -> Result<Self, String> {
        if z.len() < 2 {
            return Err(format!("PCA needs at least 2 samples, got {}", z.len()));
        }
        let cov = covariance(z);
        let (raw_eigenvalues, components) = jacobi_eigen(&cov);
        let eigenvalues: Vec<f64> = raw_eigenvalues.iter().map(|e| e.max(0.0)).collect();
        let total: f64 = eigenvalues.iter().sum();
        if total <= 0.0 {
            return Err("PCA: all features are constant (zero total variance)".to_owned());
        }
        let variance_shares: Vec<f64> = eigenvalues.iter().map(|e| e / total).collect();
        let mut cumulative = 0.0;
        let mut retained = variance_shares.len();
        for (i, share) in variance_shares.iter().enumerate() {
            cumulative += share;
            if cumulative >= target {
                retained = i + 1;
                break;
            }
        }
        let variance_retained: f64 = variance_shares[..retained].iter().sum();
        Ok(Self { eigenvalues, components, variance_shares, retained, variance_retained })
    }

    /// Projects standardized rows onto the retained components,
    /// producing n × retained score rows.
    pub fn project(&self, z: &[Vec<f64>]) -> Vec<Vec<f64>> {
        z.iter()
            .map(|row| {
                self.components[..self.retained]
                    .iter()
                    .map(|comp| row.iter().zip(comp).map(|(x, l)| x * l).sum())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        // Two correlated features, one anti-correlated, one constant.
        vec![
            vec![1.0, 2.0, -1.0, 7.0],
            vec![2.0, 4.1, -2.0, 7.0],
            vec![3.0, 5.9, -3.1, 7.0],
            vec![4.0, 8.2, -3.9, 7.0],
            vec![5.0, 9.8, -5.0, 7.0],
        ]
    }

    #[test]
    fn zscore_centers_and_scales() {
        let (z, params) = zscore(&sample());
        for col in 0..4 {
            let mean: f64 = z.iter().map(|r| r[col]).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} centered, got {mean}");
        }
        // The constant column has zero std and z-scores to zeros.
        assert_eq!(params.std[3], 0.0);
        assert!(z.iter().all(|r| r[3] == 0.0));
        // Non-constant columns have unit population variance.
        let var0: f64 = z.iter().map(|r| r[0] * r[0]).sum::<f64>() / z.len() as f64;
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let (z, _) = zscore(&sample());
        let cov = covariance(&z);
        let (eigenvalues, vectors) = jacobi_eigen(&cov);
        for (i, vi) in vectors.iter().enumerate() {
            for (j, vj) in vectors.iter().enumerate() {
                let dot: f64 = vi.iter().zip(vj).map(|(a, b)| a * b).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9, "v{i}·v{j} = {dot}");
            }
        }
        for pair in eigenvalues.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-12, "descending eigenvalues: {eigenvalues:?}");
        }
    }

    #[test]
    fn eigen_reconstructs_the_covariance_matrix() {
        let (z, _) = zscore(&sample());
        let cov = covariance(&z);
        let (eigenvalues, vectors) = jacobi_eigen(&cov);
        let p = cov.len();
        for i in 0..p {
            for j in 0..p {
                let rebuilt: f64 =
                    (0..p).map(|k| eigenvalues[k] * vectors[k][i] * vectors[k][j]).sum();
                assert!(
                    (rebuilt - cov[i][j]).abs() < 1e-9,
                    "cov[{i}][{j}] = {} rebuilt {rebuilt}",
                    cov[i][j]
                );
            }
        }
    }

    #[test]
    fn pca_retains_enough_variance() {
        let (z, _) = zscore(&sample());
        let pca = Pca::fit(&z, 0.85).expect("fits");
        assert!(pca.variance_retained >= 0.85);
        assert!(pca.retained >= 1);
        // The sample is essentially one direction: one component rules.
        assert!(pca.variance_shares[0] > 0.9, "{:?}", pca.variance_shares);
        let scores = pca.project(&z);
        assert_eq!(scores.len(), z.len());
        assert!(scores.iter().all(|s| s.len() == pca.retained));
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(Pca::fit(&[vec![1.0, 2.0]], 0.85).is_err(), "one sample");
        let constant = vec![vec![3.0, 3.0]; 4];
        let (z, _) = zscore(&constant);
        assert!(Pca::fit(&z, 0.85).is_err(), "zero variance");
    }
}
