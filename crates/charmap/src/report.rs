//! Artifact emitters (`charmap.txt`, `charmap.json`) and the subset
//! stability rule the full CI gate enforces.
//!
//! The JSON artifact is schema-versioned and written with a stable key
//! order and shortest-round-trip floats, so re-running the pipeline on
//! unchanged inputs reproduces it byte-for-byte. The text artifact is
//! the human-readable companion: variance and loadings tables, cluster
//! membership, the chosen subset, and a pairwise-distance heatmap.
//!
//! The heatmap labels rows and columns by workload *index* and prints
//! a legend below, so column widths are fixed regardless of how long
//! or hostile (embedded spaces, unicode, quotes) workload names get.

use crate::json::{self, write_escaped, write_f64, write_f64_array, write_str_array, Json};
use crate::{Charmap, SCHEMA_VERSION, VARIANCE_TARGET};
use std::fmt::Write as _;

impl Charmap {
    /// Renders the schema-versioned JSON artifact with stable key
    /// order; a pure function of the analysis result.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(out, "\"schema_version\":{SCHEMA_VERSION},");
        out.push_str("\"machine\":");
        write_escaped(&mut out, &self.machine);
        out.push_str(",\"fraction\":");
        write_f64(&mut out, self.fraction);
        let _ = write!(out, ",\"seed\":{},", self.seed);
        out.push_str("\"variance_target\":");
        write_f64(&mut out, VARIANCE_TARGET);
        out.push_str(",\"features\":");
        write_str_array(&mut out, &self.features);
        out.push_str(",\"workloads\":");
        write_str_array(&mut out, &self.workloads);
        out.push_str(",\"pca\":{\"eigenvalues\":");
        write_f64_array(&mut out, &self.eigenvalues);
        out.push_str(",\"variance_shares\":");
        write_f64_array(&mut out, &self.variance_shares);
        let _ = write!(out, ",\"retained\":{},", self.retained);
        out.push_str("\"variance_retained\":");
        write_f64(&mut out, self.variance_retained);
        out.push_str(",\"loadings\":");
        write_matrix(&mut out, &self.loadings);
        out.push_str("},\"scores\":");
        write_matrix(&mut out, &self.scores);
        let _ = write!(out, ",\"clustering\":{{\"k\":{},", self.k);
        out.push_str("\"silhouette\":");
        write_f64(&mut out, self.silhouette);
        out.push_str(",\"silhouette_by_k\":[");
        for (i, (k, s)) in self.silhouette_by_k.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{k},");
            write_f64(&mut out, *s);
            out.push(']');
        }
        out.push_str("],\"hier_agreement\":");
        write_f64(&mut out, self.hier_agreement);
        out.push_str(",\"assignments\":[");
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{a}");
        }
        out.push_str("],\"clusters\":[");
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"members\":");
            write_str_array(&mut out, &c.members);
            out.push_str(",\"representative\":");
            write_escaped(&mut out, &c.representative);
            out.push('}');
        }
        out.push_str("]},\"subset\":");
        write_str_array(&mut out, &self.subset);
        out.push_str(",\"distances\":");
        write_matrix(&mut out, &self.distances);
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable `charmap.txt` companion report.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "BigDataBench workload characterization map");
        let _ = writeln!(out, "==========================================");
        let _ = writeln!(out, "machine:   {}", self.machine);
        let _ = writeln!(out, "fraction:  {}", self.fraction);
        let _ = writeln!(out, "seed:      {}", self.seed);
        let _ = writeln!(
            out,
            "workloads: {}   features: {}",
            self.workloads.len(),
            self.features.len()
        );
        out.push('\n');

        let _ = writeln!(out, "PCA variance (target {:.0}%)", VARIANCE_TARGET * 100.0);
        let _ = writeln!(out, "  comp  eigenvalue     share  cumulative  kept");
        let mut cumulative = 0.0;
        for (i, (ev, share)) in self.eigenvalues.iter().zip(&self.variance_shares).enumerate() {
            cumulative += share;
            let _ = writeln!(
                out,
                "  PC{:<3} {:>10.4}  {:>7.2}%  {:>9.2}%  {}",
                i + 1,
                ev,
                share * 100.0,
                cumulative * 100.0,
                if i < self.retained { "*" } else { " " }
            );
        }
        let _ = writeln!(
            out,
            "  retained {} of {} components covering {:.2}% of variance",
            self.retained,
            self.eigenvalues.len(),
            self.variance_retained * 100.0
        );
        out.push('\n');

        let feat_width = self.features.iter().map(String::len).max().unwrap_or(7).max(7);
        let _ = writeln!(out, "Component loadings (feature weight per retained component)");
        let mut header = format!("  {:<feat_width$}", "feature");
        for c in 0..self.retained {
            let _ = write!(header, "  {:>8}", format!("PC{}", c + 1));
        }
        let _ = writeln!(out, "{header}");
        for (f, name) in self.features.iter().enumerate() {
            let mut row = format!("  {name:<feat_width$}");
            for comp in &self.loadings {
                let _ = write!(row, "  {:>8.4}", comp[f]);
            }
            let _ = writeln!(out, "{row}");
        }
        out.push('\n');

        let _ = writeln!(out, "Silhouette sweep (chosen k = {})", self.k);
        for (k, s) in &self.silhouette_by_k {
            let marker = if *k == self.k { "  <- chosen" } else { "" };
            let _ = writeln!(out, "  k={k}: {s:.4}{marker}");
        }
        let _ = writeln!(
            out,
            "  single-linkage cross-check agreement (Rand index): {:.4}",
            self.hier_agreement
        );
        out.push('\n');

        let _ = writeln!(out, "Clusters and representatives");
        for (i, c) in self.clusters.iter().enumerate() {
            let _ = writeln!(out, "  cluster {i} (representative: {})", c.representative);
            for m in &c.members {
                let mark = if *m == c.representative { "*" } else { " " };
                let _ = writeln!(out, "    {mark} {m}");
            }
        }
        out.push('\n');

        let _ = writeln!(
            out,
            "Representative subset ({} of {} workloads)",
            self.subset.len(),
            self.workloads.len()
        );
        for name in &self.subset {
            let _ = writeln!(out, "  - {name}");
        }
        out.push('\n');

        // Index-labeled heatmap: widths depend only on workload count.
        let _ = writeln!(out, "Pairwise distance heatmap (PCA space)");
        let idx_width = format!("[{}]", self.workloads.len().saturating_sub(1)).len();
        let mut header = format!("  {:>idx_width$}", "");
        for i in 0..self.workloads.len() {
            let _ = write!(header, " {:>6}", format!("[{i}]"));
        }
        let _ = writeln!(out, "{header}");
        for (i, row) in self.distances.iter().enumerate() {
            let mut line = format!("  {:>idx_width$}", format!("[{i}]"));
            for v in row {
                let _ = write!(line, " {v:>6.2}");
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "  legend:");
        for (i, name) in self.workloads.iter().enumerate() {
            let _ = writeln!(out, "    [{i}] {name}");
        }
        out
    }
}

fn write_matrix(out: &mut String, rows: &[Vec<f64>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64_array(out, row);
    }
    out.push(']');
}

/// The committed-baseline fields the stability rule compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Artifact schema version.
    pub schema_version: u64,
    /// Simulated machine of the committed run.
    pub machine: String,
    /// Input-scale fraction of the committed run.
    pub fraction: f64,
    /// Clustering seed of the committed run.
    pub seed: u64,
    /// Committed cluster count.
    pub k: usize,
    /// Committed representative subset, sorted.
    pub subset: Vec<String>,
    /// Committed workload list.
    pub workloads: Vec<String>,
}

impl Baseline {
    /// Parses the fields this module needs from a committed
    /// `charmap.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description for malformed JSON or missing fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("charmap baseline: {e}"))?;
        let num = |path: &[&str]| -> Result<f64, String> {
            let mut v: &Json = &doc;
            for key in path {
                v = v
                    .get(key)
                    .ok_or_else(|| format!("charmap baseline: missing {}", path.join(".")))?;
            }
            v.as_f64()
                .ok_or_else(|| format!("charmap baseline: {} is not a number", path.join(".")))
        };
        let strs = |key: &str| -> Result<Vec<String>, String> {
            doc.get(key)
                .and_then(Json::as_str_array)
                .map(|v| v.into_iter().map(str::to_owned).collect())
                .ok_or_else(|| format!("charmap baseline: missing string array {key}"))
        };
        Ok(Self {
            schema_version: num(&["schema_version"])? as u64,
            machine: doc
                .get("machine")
                .and_then(Json::as_str)
                .ok_or("charmap baseline: missing machine")?
                .to_owned(),
            fraction: num(&["fraction"])?,
            seed: num(&["seed"])? as u64,
            k: num(&["clustering", "k"])? as usize,
            subset: strs("subset")?,
            workloads: strs("workloads")?,
        })
    }
}

/// Validates a freshly computed [`Charmap`] against the committed
/// `charmap.json`, enforcing the documented **subset stability rule**:
///
/// 1. the runs must be comparable — same schema version, machine,
///    fraction, seed, and workload list;
/// 2. the fresh run must retain at least [`VARIANCE_TARGET`] variance;
/// 3. the fresh run must choose the same `k`; and
/// 4. every fresh cluster must contain **exactly one** committed
///    representative.
///
/// Rule 4 is deliberately looser than byte equality: a representative
/// may drift *within* its cluster (tiny counter deltas moving which
/// member sits nearest the centroid) without failing the gate, but any
/// change to the cluster *structure* — representatives merging into
/// one cluster, or a cluster with none — means the committed subset no
/// longer covers the workload space and must be regenerated.
///
/// # Errors
///
/// Returns a human-readable explanation of the first violated rule.
pub fn validate_baseline(fresh: &Charmap, committed_json: &str) -> Result<(), String> {
    let committed = Baseline::parse(committed_json)?;
    if committed.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "charmap schema mismatch: committed v{}, tool writes v{SCHEMA_VERSION}",
            committed.schema_version
        ));
    }
    if committed.machine != fresh.machine {
        return Err(format!(
            "charmap machine mismatch: committed {:?}, fresh {:?}",
            committed.machine, fresh.machine
        ));
    }
    if committed.fraction != fresh.fraction {
        return Err(format!(
            "charmap fraction mismatch: committed {}, fresh {}",
            committed.fraction, fresh.fraction
        ));
    }
    if committed.seed != fresh.seed {
        return Err(format!(
            "charmap seed mismatch: committed {}, fresh {}",
            committed.seed, fresh.seed
        ));
    }
    if committed.workloads != fresh.workloads {
        return Err(format!(
            "charmap workload list changed: committed {:?}, fresh {:?} — regenerate the baseline",
            committed.workloads, fresh.workloads
        ));
    }
    if fresh.variance_retained < VARIANCE_TARGET {
        return Err(format!(
            "charmap retains only {:.2}% variance (target {:.0}%)",
            fresh.variance_retained * 100.0,
            VARIANCE_TARGET * 100.0
        ));
    }
    if committed.k != fresh.k {
        return Err(format!(
            "charmap cluster count drifted: committed k={}, fresh k={} — regenerate the baseline",
            committed.k, fresh.k
        ));
    }
    for (i, cluster) in fresh.clusters.iter().enumerate() {
        let reps: Vec<&String> =
            cluster.members.iter().filter(|m| committed.subset.contains(m)).collect();
        if reps.len() != 1 {
            return Err(format!(
                "charmap subset unstable: fresh cluster {i} ({:?}) contains {} committed \
                 representatives (want exactly 1 of {:?}) — regenerate the baseline",
                cluster.members,
                reps.len(),
                committed.subset
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, tests::fixture, DEFAULT_SEED};

    #[test]
    fn json_artifact_round_trips_and_is_stable() {
        let map = analyze(&fixture(), DEFAULT_SEED).unwrap();
        let doc = map.to_json();
        assert_eq!(doc, map.to_json(), "emission is pure");
        let baseline = Baseline::parse(&doc).expect("parses back");
        assert_eq!(baseline.schema_version, SCHEMA_VERSION);
        assert_eq!(baseline.k, map.k);
        assert_eq!(baseline.subset, map.subset);
        assert_eq!(baseline.workloads, map.workloads);
        assert_eq!(baseline.seed, DEFAULT_SEED);
    }

    #[test]
    fn fresh_run_validates_against_its_own_artifact() {
        let map = analyze(&fixture(), DEFAULT_SEED).unwrap();
        validate_baseline(&map, &map.to_json()).expect("self-consistent");
    }

    #[test]
    fn stability_rule_allows_in_cluster_representative_drift() {
        let map = analyze(&fixture(), DEFAULT_SEED).unwrap();
        // Move one committed representative to a same-cluster sibling.
        let mut drifted = map.clone();
        let cluster = drifted
            .clusters
            .iter_mut()
            .find(|c| c.members.len() > 1)
            .expect("a multi-member cluster");
        let rep = cluster.representative.clone();
        let sibling = cluster.members.iter().find(|m| **m != rep).expect("sibling member").clone();
        cluster.representative = sibling.clone();
        drifted.subset = drifted.clusters.iter().map(|c| c.representative.clone()).collect();
        drifted.subset.sort();
        // The drifted artifact still passes against the original run.
        validate_baseline(&map, &drifted.to_json()).expect("in-cluster drift tolerated");
    }

    #[test]
    fn stability_rule_rejects_structural_drift() {
        let map = analyze(&fixture(), DEFAULT_SEED).unwrap();

        let mut other_k = map.clone();
        other_k.k += 1;
        let err = validate_baseline(&map, &other_k.to_json()).unwrap_err();
        assert!(err.contains("cluster count drifted"), "{err}");

        // A committed subset whose representatives pile into one fresh
        // cluster no longer covers the space.
        let mut piled = map.clone();
        let donor = piled.clusters.iter().position(|c| c.members.len() > 1).expect("multi-member");
        let member = piled.clusters[donor]
            .members
            .iter()
            .find(|m| **m != piled.clusters[donor].representative)
            .unwrap()
            .clone();
        let victim = (0..piled.clusters.len()).find(|&i| i != donor).expect("second cluster");
        piled.clusters[victim].representative = member;
        piled.subset = piled.clusters.iter().map(|c| c.representative.clone()).collect();
        piled.subset.sort();
        let err = validate_baseline(&map, &piled.to_json()).unwrap_err();
        assert!(err.contains("subset unstable"), "{err}");

        let mut reseeded = map.clone();
        reseeded.seed += 1;
        let err = validate_baseline(&map, &reseeded.to_json()).unwrap_err();
        assert!(err.contains("seed mismatch"), "{err}");
    }

    #[test]
    fn text_report_lists_every_section_with_indexed_heatmap() {
        let mut input = fixture();
        // Hostile names must not disturb the heatmap grid.
        input.vectors[0].name = "Word Count \"v2\" — extremely long hostile name".into();
        let map = analyze(&input, DEFAULT_SEED).unwrap();
        let text = map.to_text();
        for section in [
            "PCA variance",
            "Component loadings",
            "Silhouette sweep",
            "Clusters and representatives",
            "Representative subset",
            "Pairwise distance heatmap",
            "legend:",
        ] {
            assert!(text.contains(section), "missing section {section:?}\n{text}");
        }
        // Heatmap rows all share one width, independent of names.
        let rows: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.contains("heatmap"))
            .skip(1)
            .take_while(|l| !l.contains("legend"))
            .collect();
        assert_eq!(rows.len(), map.workloads.len() + 1, "header + n rows");
        let widths: std::collections::HashSet<usize> = rows.iter().map(|r| r.len()).collect();
        assert_eq!(widths.len(), 1, "uniform heatmap widths, got {widths:?}");
    }
}
