//! Seeded k-means (k swept by mean silhouette) plus single-linkage
//! hierarchical clustering as a cross-check.
//!
//! Everything here is deterministic *and* permutation-invariant: the
//! same point set in any input order yields the same partition (up to
//! cluster relabeling) for the same seed. That property is what makes
//! the representative subset reproducible enough to commit to the
//! repository and gate CI on. It is earned in three places:
//!
//! * initial centers are chosen farthest-first, with a seed-keyed
//!   value hash — not the input index — breaking exact ties;
//! * centroid updates sum member coordinates in sorted order, so
//!   floating-point addition order cannot depend on input order;
//! * silhouette and linkage sums sort their operands the same way.

/// Maximum Lloyd iterations; small point sets converge in a handful.
const MAX_ITERS: usize = 200;

/// Seed-keyed value hash of a point (FNV-1a over coordinate bits,
/// folded with xorshift). Used for permutation-invariant tie-breaks.
fn point_hash(seed: u64, point: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for x in point {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // xorshift64* finalizer spreads low-entropy inputs.
    h ^= h >> 12;
    h ^= h << 25;
    h ^= h >> 27;
    h.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Squared Euclidean distance.
fn d2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    d2(a, b).sqrt()
}

/// Sums `values` in sorted order so the result is independent of the
/// order the values were produced in.
fn stable_sum(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    values.iter().sum()
}

/// Mean of the member points, summing each coordinate over members in
/// a canonical (sorted) order.
fn stable_mean(members: &[&Vec<f64>]) -> Vec<f64> {
    let dim = members.first().map_or(0, |m| m.len());
    (0..dim)
        .map(|c| stable_sum(members.iter().map(|m| m[c]).collect()) / members.len() as f64)
        .collect()
}

/// One converged k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Number of clusters.
    pub k: usize,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Final centroids, one per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations until the assignment fixed point.
    pub iterations: usize,
}

/// Runs seeded k-means over `points` (each a PCA-space score row).
///
/// Initialization is farthest-first traversal: the seed picks the
/// starting point (by maximal seed-keyed value hash), then each next
/// center is the point farthest from its nearest chosen center, exact
/// ties broken by the hash. This keeps the partition identical under
/// input permutation, unlike sampling-based k-means++.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> KMeansResult {
    assert!(k >= 1 && k <= points.len(), "k = {k} for {} points", points.len());
    let hashes: Vec<u64> = points.iter().map(|p| point_hash(seed, p)).collect();

    // Farthest-first initial centers.
    let first = (0..points.len()).max_by_key(|&i| hashes[i]).expect("nonempty");
    let mut centers: Vec<Vec<f64>> = vec![points[first].clone()];
    while centers.len() < k {
        let next = (0..points.len())
            .max_by(|&x, &y| {
                let dx = centers.iter().map(|c| d2(&points[x], c)).fold(f64::INFINITY, f64::min);
                let dy = centers.iter().map(|c| d2(&points[y], c)).fold(f64::INFINITY, f64::min);
                dx.total_cmp(&dy).then_with(|| hashes[x].cmp(&hashes[y]))
            })
            .expect("nonempty");
        centers.push(points[next].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 1..=MAX_ITERS {
        iterations = iter;
        // Assign to the nearest center; exact ties go to the lower
        // cluster index (center order is canonical, so this is stable).
        let next: Vec<usize> = points
            .iter()
            .map(|p| {
                (0..centers.len())
                    .min_by(|&x, &y| d2(p, &centers[x]).total_cmp(&d2(p, &centers[y])))
                    .expect("k >= 1")
            })
            .collect();
        // Recompute centroids; an emptied cluster is re-seeded with the
        // point farthest from its assigned center (hash-tie-broken).
        let mut members: Vec<Vec<&Vec<f64>>> = vec![Vec::new(); centers.len()];
        for (p, &c) in points.iter().zip(&next) {
            members[c].push(p);
        }
        for (c, group) in members.iter().enumerate() {
            if group.is_empty() {
                let far = (0..points.len())
                    .max_by(|&x, &y| {
                        let dx = d2(&points[x], &centers[next[x]]);
                        let dy = d2(&points[y], &centers[next[y]]);
                        dx.total_cmp(&dy).then_with(|| hashes[x].cmp(&hashes[y]))
                    })
                    .expect("nonempty");
                centers[c] = points[far].clone();
            } else {
                centers[c] = stable_mean(group);
            }
        }
        if next == assignments && iter > 1 {
            break;
        }
        assignments = next;
    }
    let inertia =
        stable_sum(points.iter().zip(&assignments).map(|(p, &c)| d2(p, &centers[c])).collect());
    KMeansResult { k, assignments, centroids: centers, inertia, iterations }
}

/// Mean silhouette coefficient of a partition; 0 for degenerate
/// clusterings (k = 1, or every cluster a singleton). Singleton
/// clusters contribute 0 per the standard convention.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    if k < 2 || points.len() < 2 {
        return 0.0;
    }
    let sizes = {
        let mut s = vec![0usize; k];
        for &a in assignments {
            s[a] += 1;
        }
        s
    };
    let scores: Vec<f64> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if sizes[assignments[i]] <= 1 {
                return 0.0;
            }
            let mut per_cluster: Vec<Vec<f64>> = vec![Vec::new(); k];
            for (j, q) in points.iter().enumerate() {
                if i != j {
                    per_cluster[assignments[j]].push(distance(p, q));
                }
            }
            let own = assignments[i];
            let a = stable_sum(per_cluster[own].clone()) / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| stable_sum(per_cluster[c].clone()) / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if b.is_finite() && a.max(b) > 0.0 {
                (b - a) / a.max(b)
            } else {
                0.0
            }
        })
        .collect();
    stable_sum(scores) / points.len() as f64
}

/// Sweeps `k` over `candidates`, returning the best run by mean
/// silhouette (ties prefer fewer clusters) plus the full score table.
///
/// # Panics
///
/// Panics if `candidates` is empty or any candidate is out of range.
pub fn sweep_k(
    points: &[Vec<f64>],
    candidates: &[usize],
    seed: u64,
) -> (KMeansResult, Vec<(usize, f64)>) {
    assert!(!candidates.is_empty(), "no candidate cluster counts");
    let runs: Vec<(KMeansResult, f64)> = candidates
        .iter()
        .map(|&k| {
            let run = kmeans(points, k, seed);
            let score = silhouette(points, &run.assignments, k);
            (run, score)
        })
        .collect();
    let scores: Vec<(usize, f64)> = runs.iter().map(|(r, s)| (r.k, *s)).collect();
    let best = runs
        .into_iter()
        .max_by(|(ra, sa), (rb, sb)| sa.total_cmp(sb).then_with(|| rb.k.cmp(&ra.k)))
        .expect("at least one candidate");
    (best.0, scores)
}

/// Single-linkage agglomerative clustering cut at `k` clusters.
/// Returns cluster indices per point, labeled in order of each
/// cluster's first appearance over the canonical (hash-sorted) point
/// order so labels are permutation-invariant too.
pub fn single_linkage(points: &[Vec<f64>], k: usize, seed: u64) -> Vec<usize> {
    let n = points.len();
    assert!(k >= 1 && k <= n, "k = {k} for {n} points");
    let hashes: Vec<u64> = points.iter().map(|p| point_hash(seed, p)).collect();
    // Disjoint clusters as sorted member lists; cluster identity for
    // tie-breaks is the minimal member hash.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while clusters.len() > k {
        let mut best: Option<(f64, u64, u64, usize, usize)> = None;
        for x in 0..clusters.len() {
            for y in x + 1..clusters.len() {
                let link = clusters[x]
                    .iter()
                    .flat_map(|&i| clusters[y].iter().map(move |&j| (i, j)))
                    .map(|(i, j)| distance(&points[i], &points[j]))
                    .fold(f64::INFINITY, f64::min);
                let idx = clusters[x].iter().map(|&i| hashes[i]).min().expect("nonempty");
                let idy = clusters[y].iter().map(|&i| hashes[i]).min().expect("nonempty");
                let key = (link, idx.min(idy), idx.max(idy), x, y);
                let better = match &best {
                    None => true,
                    Some((d, a, b, ..)) => {
                        key.0.total_cmp(d).then(key.1.cmp(a)).then(key.2.cmp(b)).is_lt()
                    }
                };
                if better {
                    best = Some(key);
                }
            }
        }
        let (.., x, y) = best.expect("more clusters than k");
        let merged = clusters.swap_remove(y);
        clusters[x].extend(merged);
    }
    // Canonical labels: clusters ordered by minimal member hash.
    clusters.sort_by_key(|c| c.iter().map(|&i| hashes[i]).min());
    let mut labels = vec![0usize; n];
    for (label, cluster) in clusters.iter().enumerate() {
        for &i in cluster {
            labels[i] = label;
        }
    }
    labels
}

/// Rand index between two partitions of the same points: the fraction
/// of point pairs on which the partitions agree (together in both, or
/// separate in both). 1.0 means identical partitions.
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions over different point sets");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of three points each.
    fn blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)] {
            for i in 0..3 {
                points.push(vec![cx + i as f64 * 0.1, cy - i as f64 * 0.1]);
            }
        }
        points
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let points = blobs();
        let run = kmeans(&points, 3, 42);
        assert_eq!(run.assignments[0], run.assignments[1]);
        assert_eq!(run.assignments[0], run.assignments[2]);
        assert_eq!(run.assignments[3], run.assignments[5]);
        assert_eq!(run.assignments[6], run.assignments[8]);
        assert_ne!(run.assignments[0], run.assignments[3]);
        assert_ne!(run.assignments[3], run.assignments[6]);
        assert!(run.inertia < 1.0, "tight blobs: inertia {}", run.inertia);
    }

    #[test]
    fn silhouette_prefers_the_true_cluster_count() {
        let points = blobs();
        let (best, scores) = sweep_k(&points, &[2, 3, 4], 42);
        assert_eq!(best.k, 3, "silhouette sweep: {scores:?}");
        let s3 = scores.iter().find(|(k, _)| *k == 3).unwrap().1;
        assert!(s3 > 0.8, "separated blobs score high: {s3}");
    }

    #[test]
    fn kmeans_is_deterministic_and_permutation_invariant() {
        let points = blobs();
        let a = kmeans(&points, 3, 7);
        let b = kmeans(&points, 3, 7);
        assert_eq!(a.assignments, b.assignments);
        // Reverse the input order: the partition must be the same up to
        // relabeling — checked exactly via the Rand index.
        let reversed: Vec<Vec<f64>> = points.iter().rev().cloned().collect();
        let c = kmeans(&reversed, 3, 7);
        let c_unreversed: Vec<usize> = c.assignments.iter().rev().copied().collect();
        assert_eq!(rand_index(&a.assignments, &c_unreversed), 1.0);
    }

    #[test]
    fn single_linkage_agrees_on_separated_blobs() {
        let points = blobs();
        let km = kmeans(&points, 3, 42);
        let hier = single_linkage(&points, 3, 42);
        assert_eq!(rand_index(&km.assignments, &hier), 1.0, "both find the blobs");
    }

    #[test]
    fn empty_cluster_is_reseeded() {
        // Duplicated points force potential empty clusters at high k.
        let points = vec![vec![0.0, 0.0], vec![0.0, 0.0], vec![5.0, 5.0]];
        let run = kmeans(&points, 2, 1);
        let distinct: std::collections::HashSet<_> = run.assignments.iter().collect();
        assert_eq!(distinct.len(), 2, "both clusters survive: {:?}", run.assignments);
    }

    #[test]
    fn rand_index_bounds() {
        assert_eq!(rand_index(&[0, 0, 1], &[1, 1, 0]), 1.0, "relabeling is identity");
        let complete_disagreement = rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert!(complete_disagreement < 0.5);
    }
}
