//! Minimal JSON writing and parsing for the charmap artifact.
//!
//! The crate is dependency-free, so the artifact is written by hand
//! (stable key order, shortest-round-trip floats) and read back by a
//! small recursive parser that understands exactly the documents this
//! crate writes — the same approach `bdb-telemetry` takes for traces.

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` in shortest-round-trip form (`{:?}`), which always
/// keeps a decimal point or exponent so the value re-parses as a JSON
/// number. Non-finite values (which the pipeline never produces for
/// committed artifacts) degrade to `0`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push('0');
    }
}

/// Writes a `[...]` of floats.
pub fn write_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *v);
    }
    out.push(']');
}

/// Writes a `[...]` of strings.
pub fn write_str_array(out: &mut String, values: &[String]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, v);
    }
    out.push(']');
}

/// A parsed JSON value (only the shapes the artifact uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as f64.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The elements as strings, if this is an array of strings.
    pub fn as_str_array(&self) -> Option<Vec<&str>> {
        self.as_array()?.iter().map(Json::as_str).collect()
    }
}

/// Parses `text` into a [`Json`] tree.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn literal(b: &[u8], pos: &mut usize, text: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(s);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    Some(&esc) => s.push(esc as char),
                    None => return Err("unterminated escape".to_owned()),
                }
                *pos += 1;
            }
            _ => {
                let ch_len = match c {
                    0xF0..=0xF7 => 4,
                    0xE0..=0xEF => 3,
                    0xC0..=0xDF => 2,
                    _ => 1,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("bad utf-8 at byte {pos}", pos = *pos))?;
                s.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escapes_and_numbers() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}é");
        out.push_str(":[");
        write_f64(&mut out, 1.5);
        out.push(']');
        let doc = format!("{{{out}}}");
        let v = parse(&doc).expect("parses");
        let (key, val) = match &v {
            Json::Obj(members) => (&members[0].0, &members[0].1),
            other => panic!("object expected, got {other:?}"),
        };
        assert_eq!(key, "a\"b\\c\nd\u{1}é");
        assert_eq!(val.as_array().unwrap()[0].as_f64(), Some(1.5));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{}x").is_err());
    }
}
