//! Property-based tests for the clustering pipeline: for a fixed
//! seed, k-means must be deterministic, and its partition (plus the
//! full analysis and both artifacts) must be invariant under any
//! permutation of the input rows.

use bdb_charmap::{analyze, kmeans, rand_index, AnalysisInput, MetricVector};
use proptest::prelude::*;

/// Deterministic Fisher–Yates permutation of `0..n` keyed by `key`.
fn permutation(n: usize, key: u64) -> Vec<usize> {
    let mut state = key | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// 3-D point clouds of 4..12 points.
fn points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0), 4..12)
        .prop_map(|tuples| tuples.into_iter().map(|(x, y, z)| vec![x, y, z]).collect())
}

proptest! {
    /// Same points, same seed, same k: identical assignments, bit for
    /// bit, across repeated runs.
    #[test]
    fn kmeans_is_deterministic(pts in points(), seed in 0u64..1_000_000, k in 2usize..4) {
        let k = k.min(pts.len());
        let a = kmeans(&pts, k, seed);
        let b = kmeans(&pts, k, seed);
        prop_assert_eq!(&a.assignments, &b.assignments);
        prop_assert_eq!(a.inertia.to_bits(), b.inertia.to_bits(), "inertia is bit-stable");
    }

    /// Any permutation of the input rows yields the same partition (up
    /// to relabeling — checked exactly via the Rand index) and the
    /// same inertia bits.
    #[test]
    fn kmeans_is_permutation_invariant(
        pts in points(),
        seed in 0u64..1_000_000,
        k in 2usize..4,
        perm_key in proptest::prelude::any::<u64>(),
    ) {
        let k = k.min(pts.len());
        let base = kmeans(&pts, k, seed);
        let order = permutation(pts.len(), perm_key);
        let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| pts[i].clone()).collect();
        let moved = kmeans(&shuffled, k, seed);
        // Map the shuffled assignments back to original row order.
        let mut unshuffled = vec![0usize; pts.len()];
        for (shuffled_pos, &original_pos) in order.iter().enumerate() {
            unshuffled[original_pos] = moved.assignments[shuffled_pos];
        }
        prop_assert_eq!(rand_index(&base.assignments, &unshuffled), 1.0);
        prop_assert_eq!(base.inertia.to_bits(), moved.inertia.to_bits());
    }

    /// The full pipeline — z-score, PCA, k sweep, subset selection,
    /// JSON emission — is one pure function of the vector *set*: both
    /// artifacts are byte-identical under input permutation.
    #[test]
    fn analysis_artifacts_are_permutation_invariant(
        pts in points(),
        perm_key in proptest::prelude::any::<u64>(),
    ) {
        let build = |rows: &[Vec<f64>]| AnalysisInput {
            machine: "prop".into(),
            fraction: 1.0,
            features: vec!["x".into(), "y".into(), "z".into()],
            vectors: rows
                .iter()
                .enumerate()
                .map(|(i, v)| MetricVector { name: format!("w{i:02}"), values: v.clone() })
                .collect(),
        };
        let base = build(&pts);
        let mut shuffled = base.clone();
        let order = permutation(shuffled.vectors.len(), perm_key);
        shuffled.vectors = order.iter().map(|&i| base.vectors[i].clone()).collect();
        match (analyze(&base, 42), analyze(&shuffled, 42)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.to_json(), b.to_json());
                prop_assert_eq!(a.to_text(), b.to_text());
            }
            // Degenerate inputs (e.g. all-identical rows after the
            // range collapses) must fail identically for both orders.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "order changed the outcome: {a:?} vs {b:?}"),
        }
    }
}
