//! The Cloud-OLTP chaos campaign: a replicated [`bdb_cluster`] store
//! under a seeded schedule of lost ships, torn WAL writes and node
//! kills, checked for history safety, replica convergence and actual
//! fault coverage.

use crate::report::{CampaignReport, CheckerVerdict};
use bdb_cluster::{check_history, sites, Cluster, ClusterConfig, History, Op};
use bdb_faults::FaultPlan;
use bdb_kvstore::StoreConfig;
use bdb_telemetry::{ArgValue, SpanEvent};
use std::path::Path;
use std::time::Duration;

/// Sizing of one Cloud-OLTP campaign.
#[derive(Debug, Clone, Copy)]
pub struct OltpCampaignConfig {
    /// Fault rounds.
    pub rounds: u32,
    /// Distinct user keys.
    pub keys: u32,
    /// Writes per round (cycling over the key space).
    pub writes_per_round: u32,
}

impl Default for OltpCampaignConfig {
    fn default() -> Self {
        Self { rounds: 3, keys: 24, writes_per_round: 60 }
    }
}

impl OltpCampaignConfig {
    /// A shortened campaign for the subset CI tier.
    #[must_use]
    pub fn short() -> Self {
        Self { rounds: 2, keys: 12, writes_per_round: 30 }
    }
}

/// Virtual microseconds per cluster operation.
const STEP_US: u64 = 500;

/// The campaign runs the default cluster shape.
const NODES: usize = 4;
const SHARDS: usize = 8;

fn key(i: u32) -> Vec<u8> {
    format!("user{i:06}").into_bytes()
}

fn val(i: u32, tick: u64) -> Vec<u8> {
    format!("profile-{i}-t{tick}").into_bytes()
}

/// Runs the Cloud-OLTP campaign for `seed` with the cluster rooted at
/// `root` (one subdirectory per node; the caller owns cleanup).
///
/// Every round writes across the key space while the fault schedule
/// loses replication ships, tears WAL appends and — once per round, at
/// a virtual-time deadline — kills the primary of the shard being
/// written, forcing a failover on the very next operation. Dead nodes
/// rejoin at each round boundary (stray-tmp cleanup, WAL prefix
/// replay, anti-entropy). A final full repair precedes the
/// convergence check.
///
/// # Errors
///
/// Propagates real (non-injected) I/O errors only; everything injected
/// is absorbed into the report.
pub fn oltp_campaign(
    seed: u64,
    root: &Path,
    config: OltpCampaignConfig,
) -> std::io::Result<CampaignReport> {
    let ops_per_round = u64::from(config.writes_per_round + 2 * config.keys) + 8;
    let round_us = ops_per_round * STEP_US;
    let mut builder = FaultPlan::builder(seed)
        // One guaranteed lost ship early: deterministic read-repair bait.
        .io_error_nth(sites::SHIP_WRITE, 2)
        .io_error_p(sites::SHIP_WRITE, 0.02)
        // Rare torn WAL appends anywhere in the cluster: the node that
        // tears crashes and rejoins with a prefix of its log.
        .torn_write_p(bdb_kvstore::sites::WAL_APPEND, 0.003);
    for r in 0..config.rounds {
        // Mid-round, one primary dies at a virtual-time deadline.
        let at = Duration::from_micros(u64::from(r) * round_us + round_us / 3);
        builder = builder.node_kill_at(sites::NODE_KILL, at);
    }
    let plan = builder.build();

    let store =
        StoreConfig { memtable_flush_bytes: 1 << 30, max_tables: 100, ..Default::default() };
    let cluster_config = ClusterConfig { store, ..Default::default() };
    let mut c = Cluster::open(root, cluster_config, plan.clone())?;

    let mut h = History::new();
    let mut t_us = 0u64;
    let mut unavailable = 0u64;
    // Max replication lag (bytes) observed on any node's gauge at any
    // round boundary — the summary the chaos report publishes.
    let mut max_lag = 0u64;

    let tick = |c: &mut Cluster, t_us: &mut u64| {
        *t_us += STEP_US;
        c.advance(Duration::from_micros(*t_us));
    };

    for round in 0..config.rounds {
        for i in 0..config.writes_per_round {
            tick(&mut c, &mut t_us);
            let ki = i % config.keys;
            let k = key(ki);
            // The virtual-time kill rule fires here: take down the
            // primary of the shard we are about to write, so the write
            // itself forces the failover.
            if plan.node_killed(sites::NODE_KILL) {
                let shard = c.shard_of(&k);
                c.kill_node(c.primary_of_shard(shard));
            }
            match c.put(&k, &val(ki, t_us)) {
                Ok(out) => {
                    h.record(t_us, Op::Put { key: k, seq: out.seq, acked: out.acked });
                }
                Err(e) if !bdb_faults::is_injected(&e) && e.to_string().contains("unavailable") => {
                    // Too many replicas down at once: the operator
                    // restarts the dead nodes and retries.
                    unavailable += 1;
                    rejoin_dead(&mut c, &mut unavailable);
                    let out = c.put(&k, &val(ki, t_us))?;
                    h.record(t_us, Op::Put { key: k, seq: out.seq, acked: out.acked });
                }
                Err(e) => return Err(e),
            }
        }
        // Sweep every key twice: the rotating read quorum consults both
        // non-primary replicas, repairing any stale copy in place.
        for sweep in 0..2 {
            let _ = sweep;
            for i in 0..config.keys {
                tick(&mut c, &mut t_us);
                let k = key(i);
                match c.get(&k) {
                    Ok(got) => {
                        h.record(t_us, Op::Get { key: k, observed: got.map(|(s, _)| s) });
                    }
                    Err(e)
                        if !bdb_faults::is_injected(&e)
                            && e.to_string().contains("unavailable") =>
                    {
                        unavailable += 1;
                        rejoin_dead(&mut c, &mut unavailable);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // Round boundary: poll every node's replication-lag gauge
        // while divergence from the round's faults is still visible.
        for node in 0..NODES {
            let lag = c.node_metrics(node).gauge("cluster.replication_lag_bytes").get();
            max_lag = max_lag.max(u64::try_from(lag).unwrap_or(0));
        }
        // Every dead node rejoins (tmp cleanup, WAL replay,
        // anti-entropy) and diverged pairs resync.
        rejoin_dead(&mut c, &mut unavailable);
        if c.resync().is_err() {
            unavailable += 1;
        }
        let _ = round;
    }

    // Full repair, twice: first pass accumulates each shard's union
    // onto its primary, second ships the union back out.
    rejoin_dead(&mut c, &mut unavailable);
    c.reconcile_all()?;
    c.reconcile_all()?;

    // Final sweep: after repair, every read must observe the newest
    // acknowledged version.
    for i in 0..config.keys {
        tick(&mut c, &mut t_us);
        let k = key(i);
        let got = c.get(&k)?;
        h.record(t_us, Op::Get { key: k, observed: got.map(|(s, _)| s) });
    }

    // --- Checkers ---
    let hist = check_history(&h);
    let mut history_checker = CheckerVerdict::new("linearizable_history", hist.ok)
        .detail("writes", hist.writes)
        .detail("reads", hist.reads)
        .detail("unacked_reads", hist.unacked_reads)
        .detail("violations", hist.violations.len());
    if let Some(first) = hist.violations.first() {
        history_checker = history_checker.detail("first_violation", first);
    }

    let stats = c.stats();
    let mut mismatches = 0u64;
    let mut replicas_checked = 0u64;
    for shard in 0..SHARDS {
        let primary = c.primary_of_shard(shard);
        let primary_state = c.shard_snapshot(shard, primary)?;
        for node in 0..NODES {
            if node == primary || !c.alive(node) {
                continue;
            }
            let state = c.shard_snapshot(shard, node)?;
            // Only replicas of this shard hold its keys.
            if state.is_empty() && primary_state.is_empty() {
                continue;
            }
            if !state.is_empty() {
                replicas_checked += 1;
                if state != primary_state {
                    mismatches += 1;
                }
            }
        }
    }
    let convergence = CheckerVerdict::new("replica_convergence", mismatches == 0)
        .detail("replicas_checked", replicas_checked)
        .detail("mismatches", mismatches);

    let coverage = CheckerVerdict::new(
        "fault_coverage",
        stats.failovers >= 1
            && stats.read_repairs >= 1
            && stats.lost_ships >= 1
            && stats.node_kills >= 1
            && stats.rejoins >= 1
            && stats.anti_entropy_repairs >= 1,
    )
    .detail("failovers", stats.failovers)
    .detail("read_repairs", stats.read_repairs)
    .detail("lost_ships", stats.lost_ships)
    .detail("node_kills", stats.node_kills)
    .detail("rejoins", stats.rejoins)
    .detail("anti_entropy_repairs", stats.anti_entropy_repairs);

    let spans = c
        .take_events()
        .into_iter()
        .map(|ev| SpanEvent {
            name: ev.kind,
            cat: "chaos",
            start_us: ev.at_us,
            dur_us: None,
            tid: ev.node as u64,
            args: vec![
                ("node", ArgValue::Int(ev.node as i64)),
                ("shard", ArgValue::Int(if ev.shard == usize::MAX { -1 } else { ev.shard as i64 })),
            ],
        })
        .collect();

    Ok(CampaignReport {
        campaign: "cloud-oltp",
        seed,
        rounds: config.rounds,
        checkers: vec![history_checker, convergence, coverage],
        injected: plan.injected_by_site(),
        recovered: plan.recovered_by_site(),
        stats: vec![
            ("acked_writes".into(), stats.acked_writes),
            ("anti_entropy_repairs".into(), stats.anti_entropy_repairs),
            ("failed_writes".into(), stats.failed_writes),
            ("failovers".into(), stats.failovers),
            ("lost_ships".into(), stats.lost_ships),
            ("node_kills".into(), stats.node_kills),
            ("read_repairs".into(), stats.read_repairs),
            ("reads".into(), stats.reads),
            ("rejoins".into(), stats.rejoins),
            ("replication_lag".into(), max_lag),
            ("unavailable_retries".into(), unavailable),
        ],
        spans,
    })
}

/// Brings every dead node back; a failed rejoin counts and is retried
/// on the next boundary.
fn rejoin_dead(c: &mut Cluster, unavailable: &mut u64) {
    for node in 0..NODES {
        if !c.alive(node) && c.rejoin_node(node).is_err() {
            *unavailable += 1;
        }
    }
}
