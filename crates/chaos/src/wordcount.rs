//! The MapReduce chaos campaign: WordCount re-run under rotating fault
//! mixes (spill errors, task panics, speculated stragglers), checked
//! byte-identical to a fault-free baseline every round.

use crate::report::{CampaignReport, CheckerVerdict};
use bdb_faults::FaultPlan;
use bdb_mapreduce::{sites, Emitter, Engine, Job};
use bdb_telemetry::{ArgValue, SpanEvent};
use std::time::Duration;

struct WordCount;
impl Job for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn map<P: bdb_archsim::Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<String, u64>,
        _p: &mut P,
    ) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: bdb_archsim::Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

fn lines(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("alpha beta-{} gamma delta epsilon", i % 23)).collect()
}

/// Four spill-heavy map tasks, three reducers.
fn engine(faults: FaultPlan) -> Engine {
    Engine::builder().threads(4).reducers(3).map_buffer_bytes(1024).faults(faults).build()
}

/// One round's fault mix, rotating map-side, reduce-side, and
/// straggler-plus-tear schedules.
fn round_plan(seed: u64, round: u32) -> FaultPlan {
    let b = FaultPlan::builder(seed.wrapping_add(u64::from(round)));
    match round % 3 {
        0 => b
            .io_error_nth(sites::SPILL_WRITE, 0)
            .panic_nth(sites::MAP_TASK, 1)
            .straggle_nth(sites::MAP_STRAGGLER, 3, Duration::from_millis(400))
            .build(),
        1 => b.io_error_nth(sites::SPILL_READ, 0).panic_nth(sites::REDUCE_TASK, 1).build(),
        _ => b
            .torn_write_nth(sites::SPILL_WRITE, 1)
            .straggle_nth(sites::MAP_STRAGGLER, 2, Duration::from_millis(300))
            .build(),
    }
}

/// Runs the WordCount chaos campaign: a clean baseline, then `rounds`
/// faulty re-runs, each of which must recover (bounded retries plus
/// speculative execution) to the byte-identical output.
#[must_use]
pub fn wordcount_campaign(seed: u64, rounds: u32) -> CampaignReport {
    let input = lines(400);
    let (baseline, base_stats) = engine(FaultPlan::disabled()).run(&WordCount, &input);

    let mut identical_rounds = 0u64;
    let mut injected_total = 0u64;
    let mut recovered_total = 0u64;
    let mut map_retries = 0u64;
    let mut reduce_retries = 0u64;
    let mut speculative_tasks = 0u64;
    let mut injected: std::collections::BTreeMap<String, u64> = Default::default();
    let mut recovered: std::collections::BTreeMap<String, u64> = Default::default();
    let mut spans = Vec::new();

    // One virtual second per round on the campaign timeline.
    const ROUND_US: u64 = 1_000_000;
    for round in 0..rounds {
        let plan = round_plan(seed, round);
        let (out, stats) = engine(plan.clone()).run(&WordCount, &input);
        let identical = out == baseline;
        if identical {
            identical_rounds += 1;
        }
        injected_total += plan.injected();
        recovered_total += plan.recovered();
        // The retry/speculation split is scheduling-dependent (a
        // straggler's re-execution races between the two buckets), so
        // it may gate the pass boolean below but must stay out of the
        // byte-compared report; only plan-derived counters — pinned to
        // the injected schedule — are reported.
        map_retries += stats.map_retries;
        reduce_retries += stats.reduce_retries;
        speculative_tasks += stats.speculative_tasks;
        for (site, n) in plan.injected_by_site() {
            *injected.entry(site).or_insert(0) += n;
        }
        for (site, n) in plan.recovered_by_site() {
            *recovered.entry(site).or_insert(0) += n;
        }
        spans.push(SpanEvent {
            name: "wordcount-round",
            cat: "chaos",
            start_us: u64::from(round) * ROUND_US,
            dur_us: None,
            tid: 0,
            args: vec![
                ("round", ArgValue::Int(i64::from(round))),
                ("identical", ArgValue::Int(i64::from(identical))),
                ("injected", ArgValue::Int(plan.injected() as i64)),
                ("recovered", ArgValue::Int(plan.recovered() as i64)),
            ],
        });
    }

    let identity =
        CheckerVerdict::new("byte_identical_output", identical_rounds == u64::from(rounds))
            .detail("rounds", rounds)
            .detail("identical_rounds", identical_rounds)
            .detail("output_pairs", baseline.len());

    let recovery = CheckerVerdict::new(
        "retry_and_speculation",
        injected_total >= u64::from(rounds)
            && recovered_total >= 1
            && map_retries + reduce_retries >= 1
            && speculative_tasks >= 1
            && base_stats.spills > 0,
    )
    .detail("injected", injected_total)
    .detail("recovered", recovered_total)
    .detail("baseline_spills", base_stats.spills);

    CampaignReport {
        campaign: "wordcount",
        seed,
        rounds,
        checkers: vec![identity, recovery],
        injected: injected.into_iter().collect(),
        recovered: recovered.into_iter().collect(),
        stats: vec![
            ("faults_injected".into(), injected_total),
            ("faults_recovered".into(), recovered_total),
            ("identical_rounds".into(), identical_rounds),
            ("output_pairs".into(), baseline.len() as u64),
        ],
        spans,
    }
}
