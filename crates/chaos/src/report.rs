//! Campaign verdicts and the byte-deterministic `chaos_report.json`.

use bdb_telemetry::json::ObjectWriter;
use bdb_telemetry::SpanEvent;

/// One invariant checker's result.
#[derive(Debug, Clone)]
pub struct CheckerVerdict {
    /// Stable checker name (e.g. `"linearizable_history"`).
    pub name: &'static str,
    /// Whether the invariant held.
    pub pass: bool,
    /// Ordered key → value facts backing the verdict (rendered in this
    /// order, so builders must emit them deterministically).
    pub details: Vec<(String, String)>,
}

impl CheckerVerdict {
    /// A verdict with no details yet.
    pub fn new(name: &'static str, pass: bool) -> Self {
        Self { name, pass, details: Vec::new() }
    }

    /// Appends one detail fact.
    pub fn detail(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.details.push((key.to_owned(), value.to_string()));
        self
    }
}

/// Everything one campaign run produced: verdicts, fault accounting,
/// workload counters, and Chrome-trace instants on the virtual
/// timeline.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign name (`"cloud-oltp"`, `"wordcount"`, `"nutch-serving"`).
    pub campaign: &'static str,
    /// The seed the whole schedule derives from.
    pub seed: u64,
    /// Fault rounds executed.
    pub rounds: u32,
    /// Checker verdicts, in execution order.
    pub checkers: Vec<CheckerVerdict>,
    /// Injections per fault site, sorted by site.
    pub injected: Vec<(String, u64)>,
    /// Recoveries per fault site, sorted by site.
    pub recovered: Vec<(String, u64)>,
    /// Workload counters, sorted by name.
    pub stats: Vec<(String, u64)>,
    /// Instant events for the Chrome trace (virtual timestamps; not
    /// part of the JSON report).
    pub spans: Vec<SpanEvent>,
}

impl CampaignReport {
    /// Whether every checker passed (and at least one ran).
    #[must_use]
    pub fn passed(&self) -> bool {
        !self.checkers.is_empty() && self.checkers.iter().all(|c| c.pass)
    }

    /// The named checker's verdict, if it ran.
    #[must_use]
    pub fn checker(&self, name: &str) -> Option<&CheckerVerdict> {
        self.checkers.iter().find(|c| c.name == name)
    }

    /// A workload counter by name.
    #[must_use]
    pub fn stat(&self, name: &str) -> Option<u64> {
        self.stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders the report as JSON. Byte-deterministic for a given
    /// `(campaign, seed)`: fixed key order, sorted site and stat maps,
    /// no floats, no wall-clock anywhere.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let mut o = ObjectWriter::new(&mut out);
        o.field_str("schema", "bdb-chaos-report-v1")
            .field_str("campaign", self.campaign)
            .field_u64("seed", self.seed)
            .field_u64("rounds", u64::from(self.rounds));
        raw_bool(o.field_raw("pass"), self.passed());
        {
            let buf = o.field_raw("checkers");
            buf.push('[');
            for (i, c) in self.checkers.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut cw = ObjectWriter::new(buf);
                cw.field_str("name", c.name);
                raw_bool(cw.field_raw("pass"), c.pass);
                {
                    let dbuf = cw.field_raw("details");
                    let mut dw = ObjectWriter::new(dbuf);
                    for (k, v) in &c.details {
                        dw.field_str(k, v);
                    }
                    dw.finish();
                }
                cw.finish();
            }
            buf.push(']');
        }
        {
            let buf = o.field_raw("faults");
            let mut fw = ObjectWriter::new(buf);
            for (key, counts) in [("injected", &self.injected), ("recovered", &self.recovered)] {
                let mbuf = fw.field_raw(key);
                let mut mw = ObjectWriter::new(mbuf);
                for (site, n) in counts {
                    mw.field_u64(site, *n);
                }
                mw.finish();
            }
            fw.finish();
        }
        {
            let buf = o.field_raw("stats");
            let mut sw = ObjectWriter::new(buf);
            for (name, v) in &self.stats {
                sw.field_u64(name, *v);
            }
            sw.finish();
        }
        o.finish();
        out.push('\n');
        out
    }
}

/// The hand-rolled writer has no boolean field; emit the literal.
fn raw_bool(buf: &mut String, v: bool) {
    buf.push_str(if v { "true" } else { "false" });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignReport {
        CampaignReport {
            campaign: "cloud-oltp",
            seed: 7,
            rounds: 3,
            checkers: vec![
                CheckerVerdict::new("linearizable_history", true)
                    .detail("reads", 90)
                    .detail("writes", 120),
                CheckerVerdict::new("fault_coverage", true).detail("failovers", 2),
            ],
            injected: vec![("cluster.ship.write".into(), 4)],
            recovered: vec![("cluster.anti_entropy.copy".into(), 3)],
            stats: vec![("acked_writes".into(), 118), ("failovers".into(), 2)],
            spans: Vec::new(),
        }
    }

    #[test]
    fn render_is_deterministic_and_structured() {
        let a = sample().render_json();
        assert_eq!(a, sample().render_json());
        assert!(a.starts_with("{\"schema\":\"bdb-chaos-report-v1\",\"campaign\":\"cloud-oltp\""));
        assert!(a.contains("\"pass\":true"));
        assert!(a.contains("\"cluster.ship.write\":4"));
        assert!(a.contains("\"acked_writes\":118"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn failed_checker_fails_the_report() {
        let mut r = sample();
        assert!(r.passed());
        r.checkers.push(CheckerVerdict::new("broken", false).detail("violation", "lost write"));
        assert!(!r.passed());
        assert!(r.render_json().contains("\"pass\":false"));
        assert!(r.checker("broken").is_some());
        assert_eq!(r.stat("failovers"), Some(2));
    }

    #[test]
    fn empty_checker_list_is_not_a_pass() {
        let mut r = sample();
        r.checkers.clear();
        assert!(!r.passed(), "no checkers ran means nothing was verified");
    }
}
