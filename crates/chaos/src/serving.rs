//! The online-serving chaos campaign: an overloaded Nutch-style
//! service whose fault-failed requests (shed at admission, abandoned
//! past deadline) must always be tail-sampled, with exemplars in the
//! exposition and consistent SLO arithmetic.

use crate::report::{CampaignReport, CheckerVerdict};
use crate::sites;
use bdb_faults::FaultPlan;
use bdb_obs::{ObsConfig, ObsPipeline};
use bdb_serving::{QueuePolicy, QueueSim, ServiceTimeModel};
use std::time::Duration;

fn model() -> ServiceTimeModel {
    ServiceTimeModel {
        base_us: 2000.0,
        sigma: 0.3,
        tail_weight: 0.02,
        tail_mult: 5.0,
        store_share: (0.4, 0.6),
    }
}

/// Runs the serving chaos campaign: `rounds` overload phases of rising
/// intensity, with injected stragglers stretching a slice of service
/// times, fed through the full observability pipeline.
#[must_use]
pub fn serving_campaign(seed: u64, rounds: u32) -> CampaignReport {
    let m = model();
    let plan = FaultPlan::builder(seed)
        .straggle_p(sites::SERVING_STRAGGLE, 0.01, Duration::from_millis(40))
        .build();

    let threshold = Duration::from_millis(50);
    let mut config = ObsConfig::default_for(threshold, seed);
    // A low head rate makes the invariant sharp: failures survive only
    // through the tail sampler.
    config.sampling.head_rate = 0.02;
    let mut pipe = ObsPipeline::new("Nutch Server", config.clone());

    let phase_len = Duration::from_secs(3);
    let mut offered = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut timed_out = 0u64;
    let mut straggled = 0u64;
    for round in 0..rounds {
        // Rising overload: 2 workers saturate near 1000 rps.
        let rate = 1500.0 + 500.0 * f64::from(round);
        let mut times = m.sample_times(2048, seed.wrapping_add(u64::from(round)));
        for t in &mut times {
            if let Some(extra) = plan.straggle(sites::SERVING_STRAGGLE) {
                *t += extra;
                straggled += 1;
            }
        }
        let result = QueueSim::new(2)
            .with_policy(QueuePolicy {
                queue_capacity: Some(8),
                deadline: Some(Duration::from_millis(10)),
            })
            .run(rate, phase_len, &times, seed.wrapping_add(u64::from(round)));
        offered += result.records.len() as u64;
        completed += result.completed;
        shed += result.shed;
        timed_out += result.timed_out;
        let phase_offset = u64::from(round) * phase_len.as_nanos() as u64;
        let phase = match round % 3 {
            0 => "overload-a",
            1 => "overload-b",
            _ => "overload-c",
        };
        pipe.ingest_phase(phase, phase_offset, &result.records, &m);
    }
    let obs = pipe.finish();

    // Every fault-failed request is kept by the tail sampler, exactly
    // accounted, and never attributed to the head sampler.
    let failures = shed + timed_out;
    let tail_sampling = CheckerVerdict::new(
        "fault_failures_tail_sampled",
        failures > 0
            && obs.sampling.tail_error == failures
            && obs.totals.shed == shed
            && obs.totals.timed_out == timed_out,
    )
    .detail("failures", failures)
    .detail("tail_error_sampled", obs.sampling.tail_error)
    .detail("head_sampled", obs.sampling.head)
    .detail("tail_slow_sampled", obs.sampling.tail_slow);

    // The exposition parses and carries failure exemplars to pivot from
    // counter to concrete trace.
    let grammar_ok = std::panic::catch_unwind(|| {
        bdb_telemetry::assert_prometheus_grammar(&obs.prometheus);
    })
    .is_ok();
    let shed_exemplar =
        obs.prometheus.lines().any(|l| l.contains("outcome=\"shed\"") && l.contains("trace_id="));
    let timeout_exemplar = obs
        .prometheus
        .lines()
        .any(|l| l.contains("outcome=\"timed_out\"") && l.contains("trace_id="));
    let exposition = CheckerVerdict::new(
        "failure_exemplars_exposed",
        grammar_ok && shed_exemplar && timeout_exemplar,
    )
    .detail("grammar_ok", grammar_ok)
    .detail("shed_exemplar", shed_exemplar)
    .detail("timed_out_exemplar", timeout_exemplar);

    // SLO arithmetic stays consistent under faults: totals add up and
    // every bad event is on the books.
    let unfinished = offered - completed - failures;
    let slo = CheckerVerdict::new(
        "slo_accounting",
        obs.totals.offered == offered
            && obs.totals.completed == completed
            && obs.totals.bad >= failures
            && obs.budget.bad == obs.totals.bad
            && obs.totals.completed + failures + unfinished == obs.totals.offered,
    )
    .detail("offered", offered)
    .detail("completed", completed)
    .detail("bad", obs.totals.bad)
    .detail("budget_bad", obs.budget.bad)
    .detail("unfinished", unfinished)
    .detail("alerts", obs.alerts.len());

    CampaignReport {
        campaign: "nutch-serving",
        seed,
        rounds,
        checkers: vec![tail_sampling, exposition, slo],
        injected: plan.injected_by_site(),
        recovered: plan.recovered_by_site(),
        stats: vec![
            ("alerts".into(), obs.alerts.len() as u64),
            ("completed".into(), completed),
            ("offered".into(), offered),
            ("shed".into(), shed),
            ("straggled".into(), straggled),
            ("tail_error_sampled".into(), obs.sampling.tail_error),
            ("timed_out".into(), timed_out),
        ],
        spans: obs.spans,
    }
}
