//! Deterministic chaos campaigns for the BigDataBench-RS suite.
//!
//! The paper's workloads are judged on throughput and latency; this
//! crate judges them on *survival*. A [`ChaosCampaign`] composes a
//! seeded [`bdb_faults::FaultPlan`] schedule — node kills at virtual
//! deadlines, torn WAL writes mid-ship, lost replication ships, task
//! panics, stragglers — over multiple rounds of a workload, records
//! what happened on a linear virtual timeline, and then runs
//! *invariant checkers* over the observed behaviour:
//!
//! * [`oltp`] — the replicated Cloud-OLTP store ([`bdb_cluster`]):
//!   a linearizable-style history checker over acknowledged writes and
//!   quorum reads, exact replica convergence after full repair, and a
//!   fault-coverage gate (the campaign must actually have forced
//!   failovers, read-repairs, lost ships, kills and rejoins);
//! * [`wordcount`] — the MapReduce engine ([`bdb_mapreduce`]): output
//!   byte-identical to a fault-free run despite injected spill errors,
//!   task panics and speculated stragglers, every round;
//! * [`serving`] — the online tier ([`bdb_obs`]): fault-failed
//!   requests (shed, timed out) are always tail-sampled and accounted,
//!   and the SLO arithmetic stays consistent under overload.
//!
//! Everything is deterministic from `(seed, campaign)`: the same seed
//! produces the same fault schedule, the same history, the same
//! verdicts and a byte-identical [`CampaignReport::render_json`] on
//! any host — so CI can diff two runs directly, and a failing seed is
//! a reproducer, not an anecdote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oltp;
pub mod report;
pub mod serving;
pub mod wordcount;

pub use oltp::{oltp_campaign, OltpCampaignConfig};
pub use report::{CampaignReport, CheckerVerdict};
pub use serving::serving_campaign;
pub use wordcount::wordcount_campaign;

/// Fault-injection sites owned by the campaign driver itself (the
/// workload-internal sites live in their own crates' `sites` modules).
pub mod sites {
    /// Straggle site consulted once per generated service time in the
    /// serving campaign; fired rules stretch that request's latency.
    pub const SERVING_STRAGGLE: &str = "chaos.serving.straggle";
}
