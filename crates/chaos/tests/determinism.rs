//! Campaign-level guarantees: the same seed renders a byte-identical
//! `chaos_report.json` on repeated runs (so CI can diff two runs
//! directly), and the fixed CI seeds pass every invariant checker.

use bdb_chaos::{oltp_campaign, serving_campaign, wordcount_campaign, OltpCampaignConfig};
use std::path::PathBuf;

fn tmproot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdb-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn oltp_campaign_is_byte_deterministic_and_passes() {
    let (ra, rb) = (tmproot("oltp-a"), tmproot("oltp-b"));
    let a = oltp_campaign(7, &ra, OltpCampaignConfig::default()).unwrap();
    let b = oltp_campaign(7, &rb, OltpCampaignConfig::default()).unwrap();
    let (ja, jb) = (a.render_json(), b.render_json());
    assert_eq!(ja, jb, "same seed, different directories: byte-identical report");
    assert!(a.passed(), "seed 7 must pass every checker:\n{ja}");
    assert!(a.stat("failovers").unwrap() >= 1, "campaign forced a failover");
    assert!(a.stat("read_repairs").unwrap() >= 1, "campaign forced a read repair");
    assert!(
        a.stat("replication_lag").unwrap() > 0,
        "lost ships left a visible max replication lag"
    );
    // The report is root-path independent by construction.
    assert!(!ja.contains("tmp"), "no filesystem paths leak into the report");
    let c = oltp_campaign(8, &tmproot("oltp-c"), OltpCampaignConfig::default()).unwrap();
    assert_ne!(ja, c.render_json(), "a different seed is a different campaign");
    for d in [ra, rb] {
        std::fs::remove_dir_all(&d).ok();
    }
}

#[test]
fn short_oltp_campaign_passes_for_subset_tier() {
    let root = tmproot("oltp-short");
    let r = oltp_campaign(21, &root, OltpCampaignConfig::short()).unwrap();
    assert!(r.passed(), "short campaign, seed 21:\n{}", r.render_json());
    assert!(r.stat("failovers").unwrap() >= 1);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn wordcount_campaign_is_byte_deterministic_and_passes() {
    let a = wordcount_campaign(7, 3);
    let b = wordcount_campaign(7, 3);
    assert_eq!(a.render_json(), b.render_json());
    assert!(a.passed(), "seed 7:\n{}", a.render_json());
    assert!(a.checker("byte_identical_output").unwrap().pass);
}

#[test]
fn serving_campaign_is_byte_deterministic_and_passes() {
    let a = serving_campaign(7, 3);
    let b = serving_campaign(7, 3);
    assert_eq!(a.render_json(), b.render_json());
    assert!(a.passed(), "seed 7:\n{}", a.render_json());
    assert!(a.stat("shed").unwrap() > 0 && a.stat("timed_out").unwrap() > 0);
    assert_eq!(
        a.stat("tail_error_sampled"),
        Some(a.stat("shed").unwrap() + a.stat("timed_out").unwrap())
    );
}

#[test]
fn campaign_spans_use_virtual_time_only() {
    let root = tmproot("oltp-spans");
    let r = oltp_campaign(7, &root, OltpCampaignConfig::short()).unwrap();
    assert!(!r.spans.is_empty(), "lifecycle events become trace instants");
    // Virtual timestamps are bounded by the campaign timeline — a
    // wall-clock timestamp would be astronomically larger.
    let horizon_us = 10_000_000;
    for s in &r.spans {
        assert!(s.dur_us.is_none(), "lifecycle events are instants");
        assert!(
            s.start_us < horizon_us,
            "{} at {}us is on the virtual timeline",
            s.name,
            s.start_us
        );
    }
    std::fs::remove_dir_all(&root).ok();
}
