#!/usr/bin/env bash
# Tier-1 verification gate. Run before every merge.
#
#   ./ci.sh            # full gate: fmt, clippy, release build, tests
#   ./ci.sh --fast     # skip the release build (debug build via tests)
set -euo pipefail
cd "$(dirname "$0")"

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
    esac
done

run() {
    echo "== $* =="
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$fast" -eq 0 ]; then
    run cargo build --workspace --release
fi
run cargo test --workspace -q

echo "ci: all gates passed"
