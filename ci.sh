#!/usr/bin/env bash
# Tier-1 verification gate. Run before every merge.
#
#   ./ci.sh                # full gate: fmt, clippy, release build, tests
#   ./ci.sh --fast         # skip the release build (debug build via tests)
#   ./ci.sh --subset       # fast perf tier: gate only the representative
#                          # workload subset from charmap.json
#   ./ci.sh --bench-check  # also diff simulated perf vs BENCH_RESULTS.json
set -euo pipefail
cd "$(dirname "$0")"

fast=0
bench_check=0
subset=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        --bench-check) bench_check=1 ;;
        --subset) subset=1 ;;
        *) echo "usage: $0 [--fast] [--subset] [--bench-check]" >&2; exit 2 ;;
    esac
done

run() {
    echo "== $* =="
    "$@"
}

if [ "$subset" -eq 1 ]; then
    # Representative-subset fast tier: run only the workloads the
    # characterization map selected (one per cluster, committed in
    # charmap.json) against the committed BENCH_RESULTS.json. This is
    # the cheap per-PR perf gate; the full gate re-derives the map and
    # enforces the subset stability rule.
    # The SLO pass rides along for the representative serving workload
    # only (the committed subset holds no serving workload, so the pass
    # falls back to Nutch); the binary gates the burn-rate alert and
    # chain reconstruction in-process.
    # One shortened chaos campaign rides along (--bench-subset makes
    # --chaos pick the short fault schedules); the binary gates every
    # invariant checker plus forced failover/read-repair in-process.
    # A shortened time-series scrape rides along too (--bench-subset
    # makes --tsdb shrink the traced-write run and both serving
    # phases); the binary gates chain completeness, stored-vs-live
    # quantile agreement and the recording-rule replay in-process.
    slodir="$(mktemp -d)"
    chaosdir="$(mktemp -d)"
    tsdbdir="$(mktemp -d)"
    trap 'rm -rf "$slodir" "$chaosdir" "$tsdbdir"' EXIT
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --fraction 0.02 --bench-baseline BENCH_RESULTS.json \
        --bench-subset charmap.json --slo "$slodir" --chaos 7 "$chaosdir" \
        --tsdb "$tsdbdir"
    if [ ! -s "$slodir/slo_report.json" ]; then
        echo "ci: missing or empty slo_report.json in subset tier" >&2
        exit 1
    fi
    if [ ! -s "$chaosdir/chaos_report.json" ]; then
        echo "ci: missing or empty chaos_report.json in subset tier" >&2
        exit 1
    fi
    if [ ! -s "$tsdbdir/tsdb_snapshot.bin" ] || [ ! -s "$tsdbdir/timeline.txt" ]; then
        echo "ci: missing or empty tsdb artifacts in subset tier" >&2
        exit 1
    fi
    echo "ci: subset tier passed"
    exit 0
fi

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
if [ "$fast" -eq 0 ]; then
    run cargo build --workspace --release
fi
run cargo test --workspace -q

if [ "$fast" -eq 0 ]; then
    # Fault-injection smoke: WordCount with an injected spill error,
    # map-task panic and straggler must match the fault-free run.
    run cargo run --release -q -p bdb-bench --bin reproduce -- --faults 42

    # Profiling smoke: every traced workload must emit its flamegraph,
    # critical-path and utilization artifacts (the binary itself
    # additionally enforces WordCount critical-path coverage >= 90%).
    profdir="$(mktemp -d)"
    trap 'rm -rf "$profdir"' EXIT
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --fraction 0.1 --profile "$profdir"
    for stem in wordcount sort pagerank connectedcomponents kmeans \
                nutchserver cloudoltp joinquery; do
        for suffix in folded critpath.txt util.txt; do
            f="$profdir/$stem.$suffix"
            if [ ! -s "$f" ]; then
                echo "ci: missing or empty profile artifact: $f" >&2
                exit 1
            fi
        done
    done
    echo "ci: profile artifacts present for all traced workloads"

    # Characterization-map smoke: recompute the workload map at the
    # committed fraction and validate it against the committed
    # charmap.json under the subset stability rule (same k, exactly
    # one committed representative per fresh cluster). The binary also
    # gates the retained-variance target in-process.
    charmapdir="$(mktemp -d)"
    trap 'rm -rf "$profdir" "$charmapdir"' EXIT
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --fraction 0.02 --charmap "$charmapdir" \
        --charmap-baseline charmap.json
    for f in "$charmapdir/charmap.txt" "$charmapdir/charmap.json"; do
        if [ ! -s "$f" ]; then
            echo "ci: missing or empty charmap artifact: $f" >&2
            exit 1
        fi
    done
    echo "ci: charmap artifacts present and subset stable"

    # Online-observability smoke: the serving tier's SLO pass must
    # write the report plus a dashboard, Prometheus exposition and
    # chain trace per service. The binary gates alert firing, chain
    # completeness and tail agreement in-process; here we gate the
    # artifacts' presence.
    slodir="$(mktemp -d)"
    trap 'rm -rf "$profdir" "$charmapdir" "$slodir"' EXIT
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --slo "$slodir"
    if [ ! -s "$slodir/slo_report.json" ]; then
        echo "ci: missing or empty slo_report.json" >&2
        exit 1
    fi
    for stem in nutch-server olio-server rubis-server; do
        for suffix in dash.txt slo.prom.txt slo.trace.json; do
            f="$slodir/$stem.$suffix"
            if [ ! -s "$f" ]; then
                echo "ci: missing or empty SLO artifact: $f" >&2
                exit 1
            fi
        done
    done
    echo "ci: SLO artifacts present for all serving workloads"

    # Vectorized-engine gate: the columnar kernels must equal the row
    # oracle exactly (values, row order, float bits) on random tables,
    # and strictly beat it on simulated instructions AND DRAM bytes for
    # all three query workloads; then the regenerated perf numbers must
    # match the committed BENCH_RESULTS.json within tolerance.
    run cargo test --release -q -p bdb-integration \
        --test columnar_differential --test columnar_vs_row_sim
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --fraction 0.02 --bench-baseline BENCH_RESULTS.json
    echo "ci: columnar engine differential + perf gates passed"

    # Chaos-campaign gate: three fixed seeds run the full Cloud-OLTP,
    # WordCount and serving campaigns under seeded fault schedules. The
    # binary exits nonzero if any invariant checker fails or the OLTP
    # campaign did not force at least one failover and one read-repair;
    # here we additionally gate the report artifact and its
    # byte-determinism (two runs of the same seed must diff clean).
    chaosdir="$(mktemp -d)"
    trap 'rm -rf "$profdir" "$charmapdir" "$slodir" "$chaosdir"' EXIT
    for seed in 7 21 1337; do
        run cargo run --release -q -p bdb-bench --bin reproduce -- \
            --chaos "$seed" "$chaosdir/seed-$seed"
        if [ ! -s "$chaosdir/seed-$seed/chaos_report.json" ]; then
            echo "ci: missing or empty chaos_report.json for seed $seed" >&2
            exit 1
        fi
    done
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --chaos 7 "$chaosdir/seed-7-again"
    if ! cmp -s "$chaosdir/seed-7/chaos_report.json" \
                "$chaosdir/seed-7-again/chaos_report.json"; then
        echo "ci: chaos_report.json is not byte-deterministic for seed 7" >&2
        exit 1
    fi
    echo "ci: chaos campaigns passed for seeds 7, 21, 1337 (deterministic)"

    # Time-series gate: the tsdb pass scrapes a traced cluster run and
    # a shaped serving overload into the embedded store. The binary
    # gates span-chain completeness, stored-vs-live p99 agreement and
    # the recording-rule replay in-process; here we gate the artifacts
    # and the snapshot's byte-determinism across two identical-seed
    # runs.
    tsdbdir="$(mktemp -d)"
    trap 'rm -rf "$profdir" "$charmapdir" "$slodir" "$chaosdir" "$tsdbdir"' EXIT
    for tag in a b; do
        run cargo run --release -q -p bdb-bench --bin reproduce -- \
            --tsdb "$tsdbdir/$tag"
    done
    for f in tsdb_snapshot.bin timeline.txt serving.dash.txt \
             node-0.dash.txt node-1.dash.txt node-2.dash.txt node-3.dash.txt; do
        if [ ! -s "$tsdbdir/a/$f" ]; then
            echo "ci: missing or empty tsdb artifact: $f" >&2
            exit 1
        fi
    done
    if ! cmp -s "$tsdbdir/a/tsdb_snapshot.bin" "$tsdbdir/b/tsdb_snapshot.bin"; then
        echo "ci: tsdb_snapshot.bin is not byte-deterministic" >&2
        exit 1
    fi
    echo "ci: tsdb snapshot deterministic, dashboards and timeline present"
fi

if [ "$bench_check" -eq 1 ]; then
    # Regenerate the simulated perf numbers at the committed baseline's
    # fraction and fail on drift beyond tolerance. Only deterministic
    # simulator metrics are gated; wall-clock never is.
    run cargo run --release -q -p bdb-bench --bin reproduce -- \
        --fraction 0.02 --bench-baseline BENCH_RESULTS.json
fi

echo "ci: all gates passed"
