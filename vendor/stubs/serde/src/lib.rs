//! Offline stand-in for the `serde` crate.
//!
//! Provides `Serialize`/`Deserialize` traits over a single self-describing
//! in-memory tree, [`Content`], instead of serde's visitor machinery. The
//! companion `serde_derive` stub generates impls of these traits, and the
//! `serde_json` stub renders/parses `Content` as JSON text. The surface is
//! exactly what this workspace needs: derived structs, unit enums,
//! struct-variant enums, and JSON round-trips.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// Error raised by deserialization (and re-used by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Self-describing serialized value; also re-exported as `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// View as `u64` if the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// View as `i64` if the value is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// View any numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// View as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// View as an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// View as an object (key/value entry list).
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Conversion into [`Content`].
pub trait Serialize {
    /// Serialize `self` into the content tree.
    fn serialize_content(&self) -> Content;
}

/// Reconstruction from [`Content`].
pub trait Deserialize: Sized {
    /// Deserialize a value from the content tree.
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

fn mismatch<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {}", got.type_name())))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let v = content.as_u64().ok_or_else(|| {
                    Error(format!("expected unsigned integer, got {}", content.type_name()))
                })?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let v = content.as_i64().ok_or_else(|| {
                    Error(format!("expected integer, got {}", content.type_name()))
                })?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                match content.as_f64() {
                    Some(v) => Ok(v as $t),
                    None => mismatch("number", content),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content.as_bool() {
            Some(b) => Ok(b),
            None => mismatch("bool", content),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content.as_str() {
            Some(s) => Ok(s.to_string()),
            None => mismatch("string", content),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content.as_array() {
            Some(items) => items.iter().map(T::deserialize_content).collect(),
            None => mismatch("array", content),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let items = content
                    .as_array()
                    .ok_or_else(|| Error("expected tuple array".to_string()))?;
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::deserialize_content(
                            it.next().ok_or_else(|| Error("tuple too short".to_string()))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content.as_object() {
            Some(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            None => mismatch("object", content),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_content(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<_> =
            self.iter().map(|(k, v)| (k.clone(), v.serialize_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content.as_object() {
            Some(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            None => mismatch("object", content),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            ("nanos".to_string(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        let secs = content
            .get("secs")
            .and_then(Content::as_u64)
            .ok_or_else(|| Error("Duration missing `secs`".to_string()))?;
        let nanos = content
            .get("nanos")
            .and_then(Content::as_u64)
            .ok_or_else(|| Error("Duration missing `nanos`".to_string()))?;
        let nanos =
            u32::try_from(nanos).map_err(|_| Error("Duration nanos out of range".to_string()))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Helpers used by `serde_derive`-generated code; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Content, Error};

    /// Fetch a required struct field from an object.
    pub fn field<'c>(content: &'c Content, name: &str) -> Result<&'c Content, Error> {
        content.get(name).ok_or_else(|| Error(format!("missing field `{name}`")))
    }
}
