//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the small API surface the workspace's `benches/` targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, throughput
//! annotations). Every benchmark body runs exactly once so that
//! `cargo test`/`cargo bench` still exercise the code paths, but no
//! statistics are collected: this repository pins its perf claims on the
//! deterministic architecture simulator, not on wall-clock sampling.

use std::fmt::Display;

/// Measurement throughput annotation (recorded, then ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter display into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher;

impl Bencher {
    /// Run the routine. The real harness samples it many times; the stub
    /// executes it once so the code under benchmark is still covered.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _ = routine();
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Set the per-benchmark sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the group throughput (ignored).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Register and immediately run a benchmark once.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {}/{id}: running once (stub harness)", self.name);
        f(&mut Bencher);
        self
    }

    /// Register and immediately run a parameterized benchmark once.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench {}/{}: running once (stub harness)", self.name, id.id);
        f(&mut Bencher, input);
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declare a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from a list of group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
