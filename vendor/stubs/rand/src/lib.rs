//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` helpers
//! `gen`, `gen_range`, `gen_bool` — on top of a small, well-known PRNG
//! (splitmix64 seeding feeding xoshiro256**). The generator is fully
//! deterministic for a given seed, which is all the deterministic
//! benchmark suite requires; it makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges usable with [`Rng::gen_range`]; generic over the output type so
/// unsuffixed range literals infer from the call site, as in real rand.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
