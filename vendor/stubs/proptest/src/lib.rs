//! Offline stand-in for the `proptest` crate.
//!
//! Implements deterministic random testing with the subset of the
//! proptest 1.x API this workspace uses: the `proptest!` macro,
//! `Strategy` with `prop_map`, `any::<T>()`, numeric-range and tuple
//! strategies, `collection::vec`, `Just`, weighted `prop_oneof!`, and the
//! `prop_assert*` macros. There is no shrinking: a failing case reports
//! its case number and seed so it can be replayed (the generator is a
//! fixed function of test name and case index, so failures reproduce
//! across runs).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for one test case (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Type-erased strategy (result of [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy generating exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of moderate magnitudes and signs; always finite.
        let magnitude = rng.unit() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Full-range strategy for `T` (`any::<u16>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String literals are regex strategies, as in real proptest. Supported
/// subset: literal characters and `[a-z]` classes, each optionally
/// quantified with `{m}` or `{m,n}` — the shapes this workspace uses.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') => {
                            let lo = prev.take().unwrap_or_else(|| {
                                panic!("regex strategy `{self}`: dangling `-`")
                            });
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("regex strategy `{self}`: open range"));
                            set.pop();
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        }
                        Some(c) => {
                            prev = Some(c);
                            set.push(c);
                        }
                        None => panic!("regex strategy `{self}`: unterminated class"),
                    }
                }
                set
            } else {
                vec![c]
            };
            assert!(!choices.is_empty(), "regex strategy `{self}`: empty class");
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let mut parts = spec.splitn(2, ',');
                let lo: usize = parts
                    .next()
                    .and_then(|p| p.trim().parse().ok())
                    .unwrap_or_else(|| panic!("regex strategy `{self}`: bad quantifier"));
                let hi: usize = match parts.next() {
                    Some(p) => p
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("regex strategy `{self}`: bad quantifier")),
                    None => lo,
                };
                (lo, hi)
            } else {
                (1, 1)
            };
            let count = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..count {
                out.push(choices[(rng.next_u64() as usize) % choices.len()]);
            }
        }
        out
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Convert into inclusive-lo, exclusive-hi bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Weighted union strategy built by [`prop_oneof!`].
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof: zero total weight");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights cover the draw")
    }
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*);
    };
    (@impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {case}/{}: {err}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Alias module matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_case() {
        let strategy = crate::collection::vec(0u64..100, 1..20);
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(strategy.sample(&mut a), strategy.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(v in 10u32..20, f in -1.0f64..1.0, x in any::<u16>()) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = x;
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            3 => (0u32..10).prop_map(|x| x * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn vec_sizes_respected(items in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(items.len() >= 2 && items.len() < 5);
        }
    }
}
