//! Offline stand-in for the `parking_lot` crate: declared by workspace members
//! but not referenced by any code path in this repository.
