//! Offline stand-in for the `crossbeam` crate: declared by workspace members
//! but not referenced by any code path in this repository.
