//! Offline stand-in for `serde_json`.
//!
//! Renders the stub `serde::Content` tree as JSON text and parses JSON
//! text back, covering `to_string`, `to_string_pretty`, `from_str`, and a
//! `Value` with the accessor methods this workspace's tests use. Numbers
//! round-trip through Rust's shortest-representation float formatting, so
//! `f64` fields compare equal after a round-trip.

pub use serde::Content as Value;
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize any supported type from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::deserialize_content(&value)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, out, indent, depth),
        Value::Map(entries) => write_map(entries, out, indent, depth),
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() || x.is_infinite() {
        // JSON has no non-finite literals; serde_json emits null.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional marker so the value parses back as F64.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_seq(items: &[Value], out: &mut String, indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(item, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], out: &mut String, indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(key, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(value, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".to_string()))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number span is ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )));
                }
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn round_trips_nested_document() {
        let json = r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny"}, "d": null, "e": true}"#;
        let v: Value = super::from_str(json).expect("parse");
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str), Some("x\ny"));
        let text = super::to_string(&v).expect("serialize");
        let back: Value = super::from_str(&text).expect("reparse");
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, -1.5e-7, 123456.789, 3.0, f64::MAX, 1e300] {
            let text = super::to_string(&x).expect("serialize");
            let back: f64 = super::from_str(&text).expect("parse");
            assert_eq!(x.to_bits(), back.to_bits(), "{x} vs {back} via {text}");
        }
    }

    #[test]
    fn integers_keep_full_precision() {
        let text = super::to_string(&u64::MAX).expect("serialize");
        let back: u64 = super::from_str(&text).expect("parse");
        assert_eq!(back, u64::MAX);
    }
}
