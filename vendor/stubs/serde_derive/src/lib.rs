//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros for the stub `serde` data model: structs with
//! named fields, unit-variant enums, and struct-variant enums — the three
//! shapes this workspace serializes. The input item is parsed directly from
//! the raw `proc_macro::TokenStream` (no `syn`/`quote`, which are not
//! available offline) and the generated impls are emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item: only names matter, never types —
/// generated code lets inference pick the right `Serialize`/`Deserialize`
/// impl per field.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, Option<Vec<String>>)> },
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute or doc comment: skip `#[...]`.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip visibility, including `pub(crate)` style.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut tokens, "struct name");
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item::Struct { name, fields: parse_field_names(g.stream()) };
                    }
                    other => panic!(
                        "serde stub derive supports only structs with named fields; \
                         `{name}` is followed by {other:?}"
                    ),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut tokens, "enum name");
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item::Enum { name, variants: parse_variants(g.stream()) };
                    }
                    other => panic!("malformed enum `{name}`: expected body, got {other:?}"),
                }
            }
            Some(_) => {}
            None => panic!("serde stub derive: no struct or enum found in input"),
        }
    }
}

fn expect_ident(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected {what}, got {other:?}"),
    }
}

/// Extract field names from the token stream of a braced field list,
/// skipping types (tracking `<...>` nesting so commas inside generic
/// arguments don't split fields).
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde stub derive: expected field name, got {tree:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tree in tokens.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Extract variants: name plus `Some(field names)` for struct variants,
/// `None` for unit variants.
fn parse_variants(stream: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("serde stub derive: expected variant name, got {tree:?}");
        };
        let name = variant.to_string();
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_field_names(g.stream());
                tokens.next();
                variants.push((name, Some(fields)));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde stub derive: tuple variant `{name}` is not supported");
            }
            _ => variants.push((name, None)),
        }
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

/// Derive the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(<[_]>::into_vec(Box::new([{}])))\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),"
                    ),
                    Some(fields) => {
                        let pats = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::serialize_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {pats} }} => ::serde::Content::Map(\
                                 <[_]>::into_vec(Box::new([(\"{v}\".to_string(), \
                                 ::serde::Content::Map(<[_]>::into_vec(Box::new([{}]))))])))\
                             ,",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    out.parse().expect("serde stub derive: generated Serialize impl must parse")
}

/// Derive the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_content(\
                         ::serde::__private::field(content, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut body = String::new();
            let unit_checks: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| {
                    format!(
                        "if tag == \"{v}\" {{ \
                             return ::core::result::Result::Ok({name}::{v}); \
                         }}"
                    )
                })
                .collect();
            if !unit_checks.is_empty() {
                body.push_str(&format!(
                    "if let ::core::option::Option::Some(tag) = content.as_str() {{ {} }}\n",
                    unit_checks.join(" ")
                ));
            }
            for (v, fields) in variants.iter().filter(|(_, f)| f.is_some()) {
                let fields = fields.as_ref().expect("filtered to struct variants");
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize_content(\
                             ::serde::__private::field(inner, \"{f}\")?)?"
                        )
                    })
                    .collect();
                body.push_str(&format!(
                    "if let ::core::option::Option::Some(inner) = content.get(\"{v}\") {{ \
                         return ::core::result::Result::Ok({name}::{v} {{ {} }}); \
                     }}\n",
                    inits.join(", ")
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(content: &::serde::Content) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         {body}\
                         ::core::result::Result::Err(::serde::Error(\
                             \"unrecognized variant of {name}\".to_string()))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde stub derive: generated Deserialize impl must parse")
}
