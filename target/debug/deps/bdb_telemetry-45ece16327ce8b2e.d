/root/repo/target/debug/deps/bdb_telemetry-45ece16327ce8b2e.d: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libbdb_telemetry-45ece16327ce8b2e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libbdb_telemetry-45ece16327ce8b2e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/chrome_trace.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
