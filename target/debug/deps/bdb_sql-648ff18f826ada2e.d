/root/repo/target/debug/deps/bdb_sql-648ff18f826ada2e.d: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_sql-648ff18f826ada2e.rmeta: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs Cargo.toml

crates/sql/src/lib.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/parser.rs:
crates/sql/src/schema.rs:
crates/sql/src/table.rs:
crates/sql/src/trace.rs:
crates/sql/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
