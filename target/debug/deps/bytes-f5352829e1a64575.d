/root/repo/target/debug/deps/bytes-f5352829e1a64575.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f5352829e1a64575.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
