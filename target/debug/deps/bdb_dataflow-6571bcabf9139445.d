/root/repo/target/debug/deps/bdb_dataflow-6571bcabf9139445.d: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

/root/repo/target/debug/deps/libbdb_dataflow-6571bcabf9139445.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

/root/repo/target/debug/deps/libbdb_dataflow-6571bcabf9139445.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/dataset.rs:
crates/dataflow/src/trace.rs:
