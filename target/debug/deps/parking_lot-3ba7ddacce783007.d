/root/repo/target/debug/deps/parking_lot-3ba7ddacce783007.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3ba7ddacce783007.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3ba7ddacce783007.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
