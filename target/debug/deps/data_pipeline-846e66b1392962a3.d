/root/repo/target/debug/deps/data_pipeline-846e66b1392962a3.d: tests/tests/data_pipeline.rs

/root/repo/target/debug/deps/data_pipeline-846e66b1392962a3: tests/tests/data_pipeline.rs

tests/tests/data_pipeline.rs:
