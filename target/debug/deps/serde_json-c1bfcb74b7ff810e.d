/root/repo/target/debug/deps/serde_json-c1bfcb74b7ff810e.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c1bfcb74b7ff810e.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
