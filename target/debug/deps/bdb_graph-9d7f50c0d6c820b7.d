/root/repo/target/debug/deps/bdb_graph-9d7f50c0d6c820b7.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_graph-9d7f50c0d6c820b7.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
