/root/repo/target/debug/deps/telemetry_trace-a8d0a406c4c6c502.d: tests/tests/telemetry_trace.rs

/root/repo/target/debug/deps/telemetry_trace-a8d0a406c4c6c502: tests/tests/telemetry_trace.rs

tests/tests/telemetry_trace.rs:
