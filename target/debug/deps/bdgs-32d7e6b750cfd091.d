/root/repo/target/debug/deps/bdgs-32d7e6b750cfd091.d: crates/bench/src/bin/bdgs.rs Cargo.toml

/root/repo/target/debug/deps/libbdgs-32d7e6b750cfd091.rmeta: crates/bench/src/bin/bdgs.rs Cargo.toml

crates/bench/src/bin/bdgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
