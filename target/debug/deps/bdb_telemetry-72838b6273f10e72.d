/root/repo/target/debug/deps/bdb_telemetry-72838b6273f10e72.d: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_telemetry-72838b6273f10e72.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/chrome_trace.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
