/root/repo/target/debug/deps/bdb_refbench-681f8819e88c2aac.d: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

/root/repo/target/debug/deps/libbdb_refbench-681f8819e88c2aac.rlib: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

/root/repo/target/debug/deps/libbdb_refbench-681f8819e88c2aac.rmeta: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

crates/refbench/src/lib.rs:
crates/refbench/src/hpcc.rs:
crates/refbench/src/parsec.rs:
crates/refbench/src/spec.rs:
