/root/repo/target/debug/deps/proptest_cache-267c659343b974bd.d: crates/archsim/tests/proptest_cache.rs

/root/repo/target/debug/deps/proptest_cache-267c659343b974bd: crates/archsim/tests/proptest_cache.rs

crates/archsim/tests/proptest_cache.rs:
