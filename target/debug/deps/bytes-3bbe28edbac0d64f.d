/root/repo/target/debug/deps/bytes-3bbe28edbac0d64f.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3bbe28edbac0d64f.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3bbe28edbac0d64f.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
