/root/repo/target/debug/deps/serde_derive-22263aff76d0b5d1.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-22263aff76d0b5d1.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
