/root/repo/target/debug/deps/bdb_refbench-c8ba154b391b5940.d: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_refbench-c8ba154b391b5940.rmeta: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs Cargo.toml

crates/refbench/src/lib.rs:
crates/refbench/src/hpcc.rs:
crates/refbench/src/parsec.rs:
crates/refbench/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
