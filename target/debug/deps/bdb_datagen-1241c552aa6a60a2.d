/root/repo/target/debug/deps/bdb_datagen-1241c552aa6a60a2.d: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_datagen-1241c552aa6a60a2.rmeta: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/convert.rs:
crates/datagen/src/graph.rs:
crates/datagen/src/resume.rs:
crates/datagen/src/review.rs:
crates/datagen/src/seeds.rs:
crates/datagen/src/stats.rs:
crates/datagen/src/table.rs:
crates/datagen/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
