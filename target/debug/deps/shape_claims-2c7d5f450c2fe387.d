/root/repo/target/debug/deps/shape_claims-2c7d5f450c2fe387.d: tests/tests/shape_claims.rs

/root/repo/target/debug/deps/shape_claims-2c7d5f450c2fe387: tests/tests/shape_claims.rs

tests/tests/shape_claims.rs:
