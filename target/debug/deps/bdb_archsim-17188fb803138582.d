/root/repo/target/debug/deps/bdb_archsim-17188fb803138582.d: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs

/root/repo/target/debug/deps/bdb_archsim-17188fb803138582: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs

crates/archsim/src/lib.rs:
crates/archsim/src/cache.rs:
crates/archsim/src/layout.rs:
crates/archsim/src/machine.rs:
crates/archsim/src/metrics.rs:
crates/archsim/src/probe.rs:
crates/archsim/src/timing.rs:
crates/archsim/src/tlb.rs:
