/root/repo/target/debug/deps/bdb_dataflow-b484358db79d56df.d: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_dataflow-b484358db79d56df.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs Cargo.toml

crates/dataflow/src/lib.rs:
crates/dataflow/src/dataset.rs:
crates/dataflow/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
