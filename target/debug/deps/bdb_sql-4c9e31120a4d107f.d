/root/repo/target/debug/deps/bdb_sql-4c9e31120a4d107f.d: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

/root/repo/target/debug/deps/libbdb_sql-4c9e31120a4d107f.rlib: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

/root/repo/target/debug/deps/libbdb_sql-4c9e31120a4d107f.rmeta: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

crates/sql/src/lib.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/parser.rs:
crates/sql/src/schema.rs:
crates/sql/src/table.rs:
crates/sql/src/trace.rs:
crates/sql/src/value.rs:
