/root/repo/target/debug/deps/reproduce-d64557a360af3e9f.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-d64557a360af3e9f: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
