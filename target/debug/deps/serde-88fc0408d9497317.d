/root/repo/target/debug/deps/serde-88fc0408d9497317.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-88fc0408d9497317.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-88fc0408d9497317.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
