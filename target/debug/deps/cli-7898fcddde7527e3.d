/root/repo/target/debug/deps/cli-7898fcddde7527e3.d: crates/bench/tests/cli.rs

/root/repo/target/debug/deps/cli-7898fcddde7527e3: crates/bench/tests/cli.rs

crates/bench/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_reproduce=/root/repo/target/debug/reproduce
