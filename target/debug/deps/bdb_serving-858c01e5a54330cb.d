/root/repo/target/debug/deps/bdb_serving-858c01e5a54330cb.d: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs

/root/repo/target/debug/deps/bdb_serving-858c01e5a54330cb: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs

crates/serving/src/lib.rs:
crates/serving/src/auction.rs:
crates/serving/src/latency.rs:
crates/serving/src/loadgen.rs:
crates/serving/src/queue.rs:
crates/serving/src/search.rs:
crates/serving/src/server.rs:
crates/serving/src/social.rs:
crates/serving/src/trace.rs:
