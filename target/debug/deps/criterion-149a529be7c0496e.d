/root/repo/target/debug/deps/criterion-149a529be7c0496e.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-149a529be7c0496e.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-149a529be7c0496e.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
