/root/repo/target/debug/deps/bdb_kvstore-fa411e29aed95c1f.d: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/bdb_kvstore-fa411e29aed95c1f: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/bloom.rs:
crates/kvstore/src/memtable.rs:
crates/kvstore/src/sstable.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/trace.rs:
crates/kvstore/src/wal.rs:
