/root/repo/target/debug/deps/ablation-722e022348525a2c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-722e022348525a2c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
