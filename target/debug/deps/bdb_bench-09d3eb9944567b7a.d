/root/repo/target/debug/deps/bdb_bench-09d3eb9944567b7a.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbdb_bench-09d3eb9944567b7a.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libbdb_bench-09d3eb9944567b7a.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/results.rs:
crates/bench/src/table.rs:
