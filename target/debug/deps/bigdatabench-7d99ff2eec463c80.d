/root/repo/target/debug/deps/bigdatabench-7d99ff2eec463c80.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/suite.rs crates/core/src/workload.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/ecommerce.rs crates/core/src/workloads/micro.rs crates/core/src/workloads/oltp.rs crates/core/src/workloads/query.rs crates/core/src/workloads/search.rs crates/core/src/workloads/service.rs crates/core/src/workloads/social.rs Cargo.toml

/root/repo/target/debug/deps/libbigdatabench-7d99ff2eec463c80.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/suite.rs crates/core/src/workload.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/ecommerce.rs crates/core/src/workloads/micro.rs crates/core/src/workloads/oltp.rs crates/core/src/workloads/query.rs crates/core/src/workloads/search.rs crates/core/src/workloads/service.rs crates/core/src/workloads/social.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/suite.rs:
crates/core/src/workload.rs:
crates/core/src/workloads/mod.rs:
crates/core/src/workloads/ecommerce.rs:
crates/core/src/workloads/micro.rs:
crates/core/src/workloads/oltp.rs:
crates/core/src/workloads/query.rs:
crates/core/src/workloads/search.rs:
crates/core/src/workloads/service.rs:
crates/core/src/workloads/social.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
