/root/repo/target/debug/deps/serde_json-28a5229e9cebd384.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-28a5229e9cebd384.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-28a5229e9cebd384.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
