/root/repo/target/debug/deps/rand-ffbfa6f26c3c4ba9.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ffbfa6f26c3c4ba9.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
