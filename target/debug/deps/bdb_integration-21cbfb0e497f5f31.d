/root/repo/target/debug/deps/bdb_integration-21cbfb0e497f5f31.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_integration-21cbfb0e497f5f31.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
