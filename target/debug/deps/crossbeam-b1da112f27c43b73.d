/root/repo/target/debug/deps/crossbeam-b1da112f27c43b73.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-b1da112f27c43b73.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-b1da112f27c43b73.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
