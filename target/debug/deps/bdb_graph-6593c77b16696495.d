/root/repo/target/debug/deps/bdb_graph-6593c77b16696495.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

/root/repo/target/debug/deps/libbdb_graph-6593c77b16696495.rlib: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

/root/repo/target/debug/deps/libbdb_graph-6593c77b16696495.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/trace.rs:
