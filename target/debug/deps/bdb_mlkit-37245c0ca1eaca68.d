/root/repo/target/debug/deps/bdb_mlkit-37245c0ca1eaca68.d: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

/root/repo/target/debug/deps/bdb_mlkit-37245c0ca1eaca68: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/bayes.rs:
crates/mlkit/src/cf.rs:
crates/mlkit/src/kmeans.rs:
