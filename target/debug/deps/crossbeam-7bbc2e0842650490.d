/root/repo/target/debug/deps/crossbeam-7bbc2e0842650490.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-7bbc2e0842650490.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
