/root/repo/target/debug/deps/bdb_mapreduce-c8fc2cf646a10e2c.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

/root/repo/target/debug/deps/libbdb_mapreduce-c8fc2cf646a10e2c.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

/root/repo/target/debug/deps/libbdb_mapreduce-c8fc2cf646a10e2c.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/codec.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/spill.rs:
crates/mapreduce/src/trace.rs:
