/root/repo/target/debug/deps/bdb_mapreduce-e4b0310d4e78c4ba.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

/root/repo/target/debug/deps/bdb_mapreduce-e4b0310d4e78c4ba: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/codec.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/spill.rs:
crates/mapreduce/src/trace.rs:
