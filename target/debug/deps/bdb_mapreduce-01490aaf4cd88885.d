/root/repo/target/debug/deps/bdb_mapreduce-01490aaf4cd88885.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_mapreduce-01490aaf4cd88885.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs Cargo.toml

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/codec.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/spill.rs:
crates/mapreduce/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
