/root/repo/target/debug/deps/rand-47514907d9f7bd13.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-47514907d9f7bd13.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-47514907d9f7bd13.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
