/root/repo/target/debug/deps/bdb_mlkit-e4443ae8b77f9c07.d: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_mlkit-e4443ae8b77f9c07.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs Cargo.toml

crates/mlkit/src/lib.rs:
crates/mlkit/src/bayes.rs:
crates/mlkit/src/cf.rs:
crates/mlkit/src/kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
