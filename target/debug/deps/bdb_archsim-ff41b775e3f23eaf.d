/root/repo/target/debug/deps/bdb_archsim-ff41b775e3f23eaf.d: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_archsim-ff41b775e3f23eaf.rmeta: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs Cargo.toml

crates/archsim/src/lib.rs:
crates/archsim/src/cache.rs:
crates/archsim/src/layout.rs:
crates/archsim/src/machine.rs:
crates/archsim/src/metrics.rs:
crates/archsim/src/probe.rs:
crates/archsim/src/timing.rs:
crates/archsim/src/tlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
