/root/repo/target/debug/deps/bdb_dataflow-a6acfde7d8f94574.d: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

/root/repo/target/debug/deps/bdb_dataflow-a6acfde7d8f94574: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/dataset.rs:
crates/dataflow/src/trace.rs:
