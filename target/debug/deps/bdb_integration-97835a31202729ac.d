/root/repo/target/debug/deps/bdb_integration-97835a31202729ac.d: tests/src/lib.rs

/root/repo/target/debug/deps/libbdb_integration-97835a31202729ac.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libbdb_integration-97835a31202729ac.rmeta: tests/src/lib.rs

tests/src/lib.rs:
