/root/repo/target/debug/deps/bdb_telemetry-77bc189494e01013.d: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/bdb_telemetry-77bc189494e01013: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/chrome_trace.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
