/root/repo/target/debug/deps/bdgs-963c0ef903497f0a.d: crates/bench/src/bin/bdgs.rs

/root/repo/target/debug/deps/bdgs-963c0ef903497f0a: crates/bench/src/bin/bdgs.rs

crates/bench/src/bin/bdgs.rs:
