/root/repo/target/debug/deps/bdb_kvstore-46ed9ba6e8519acd.d: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_kvstore-46ed9ba6e8519acd.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs Cargo.toml

crates/kvstore/src/lib.rs:
crates/kvstore/src/bloom.rs:
crates/kvstore/src/memtable.rs:
crates/kvstore/src/sstable.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/trace.rs:
crates/kvstore/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
