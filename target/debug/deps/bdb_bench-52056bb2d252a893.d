/root/repo/target/debug/deps/bdb_bench-52056bb2d252a893.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/bdb_bench-52056bb2d252a893: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/results.rs:
crates/bench/src/table.rs:
