/root/repo/target/debug/deps/bdb_datagen-b45a858eaf2cfb83.d: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs

/root/repo/target/debug/deps/bdb_datagen-b45a858eaf2cfb83: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs

crates/datagen/src/lib.rs:
crates/datagen/src/convert.rs:
crates/datagen/src/graph.rs:
crates/datagen/src/resume.rs:
crates/datagen/src/review.rs:
crates/datagen/src/seeds.rs:
crates/datagen/src/stats.rs:
crates/datagen/src/table.rs:
crates/datagen/src/text.rs:
