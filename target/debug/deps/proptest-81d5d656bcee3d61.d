/root/repo/target/debug/deps/proptest-81d5d656bcee3d61.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-81d5d656bcee3d61.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-81d5d656bcee3d61.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
