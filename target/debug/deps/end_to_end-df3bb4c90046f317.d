/root/repo/target/debug/deps/end_to_end-df3bb4c90046f317.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-df3bb4c90046f317: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
