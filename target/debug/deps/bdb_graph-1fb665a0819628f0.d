/root/repo/target/debug/deps/bdb_graph-1fb665a0819628f0.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

/root/repo/target/debug/deps/bdb_graph-1fb665a0819628f0: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/trace.rs:
