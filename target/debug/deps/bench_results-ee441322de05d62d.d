/root/repo/target/debug/deps/bench_results-ee441322de05d62d.d: tests/tests/bench_results.rs

/root/repo/target/debug/deps/bench_results-ee441322de05d62d: tests/tests/bench_results.rs

tests/tests/bench_results.rs:
