/root/repo/target/debug/deps/bdb_bench-caa70a68f2e69bf1.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_bench-caa70a68f2e69bf1.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/results.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
