/root/repo/target/debug/deps/bdb_mlkit-84b56305302d99ad.d: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

/root/repo/target/debug/deps/libbdb_mlkit-84b56305302d99ad.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

/root/repo/target/debug/deps/libbdb_mlkit-84b56305302d99ad.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/bayes.rs:
crates/mlkit/src/cf.rs:
crates/mlkit/src/kmeans.rs:
