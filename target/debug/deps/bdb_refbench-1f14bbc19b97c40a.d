/root/repo/target/debug/deps/bdb_refbench-1f14bbc19b97c40a.d: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

/root/repo/target/debug/deps/bdb_refbench-1f14bbc19b97c40a: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

crates/refbench/src/lib.rs:
crates/refbench/src/hpcc.rs:
crates/refbench/src/parsec.rs:
crates/refbench/src/spec.rs:
