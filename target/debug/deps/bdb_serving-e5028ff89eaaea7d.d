/root/repo/target/debug/deps/bdb_serving-e5028ff89eaaea7d.d: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbdb_serving-e5028ff89eaaea7d.rmeta: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs Cargo.toml

crates/serving/src/lib.rs:
crates/serving/src/auction.rs:
crates/serving/src/latency.rs:
crates/serving/src/loadgen.rs:
crates/serving/src/queue.rs:
crates/serving/src/search.rs:
crates/serving/src/server.rs:
crates/serving/src/social.rs:
crates/serving/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
