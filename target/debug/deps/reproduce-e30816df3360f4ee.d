/root/repo/target/debug/deps/reproduce-e30816df3360f4ee.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-e30816df3360f4ee.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
