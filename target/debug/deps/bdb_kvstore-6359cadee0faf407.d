/root/repo/target/debug/deps/bdb_kvstore-6359cadee0faf407.d: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libbdb_kvstore-6359cadee0faf407.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

/root/repo/target/debug/deps/libbdb_kvstore-6359cadee0faf407.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/bloom.rs:
crates/kvstore/src/memtable.rs:
crates/kvstore/src/sstable.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/trace.rs:
crates/kvstore/src/wal.rs:
