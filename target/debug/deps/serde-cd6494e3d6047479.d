/root/repo/target/debug/deps/serde-cd6494e3d6047479.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-cd6494e3d6047479.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
