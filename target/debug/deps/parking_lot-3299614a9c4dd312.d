/root/repo/target/debug/deps/parking_lot-3299614a9c4dd312.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3299614a9c4dd312.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
