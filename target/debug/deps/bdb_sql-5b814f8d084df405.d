/root/repo/target/debug/deps/bdb_sql-5b814f8d084df405.d: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

/root/repo/target/debug/deps/bdb_sql-5b814f8d084df405: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

crates/sql/src/lib.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/parser.rs:
crates/sql/src/schema.rs:
crates/sql/src/table.rs:
crates/sql/src/trace.rs:
crates/sql/src/value.rs:
