/root/repo/target/release/deps/bdb_serving-be83e39933c43934.d: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs

/root/repo/target/release/deps/libbdb_serving-be83e39933c43934.rlib: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs

/root/repo/target/release/deps/libbdb_serving-be83e39933c43934.rmeta: crates/serving/src/lib.rs crates/serving/src/auction.rs crates/serving/src/latency.rs crates/serving/src/loadgen.rs crates/serving/src/queue.rs crates/serving/src/search.rs crates/serving/src/server.rs crates/serving/src/social.rs crates/serving/src/trace.rs

crates/serving/src/lib.rs:
crates/serving/src/auction.rs:
crates/serving/src/latency.rs:
crates/serving/src/loadgen.rs:
crates/serving/src/queue.rs:
crates/serving/src/search.rs:
crates/serving/src/server.rs:
crates/serving/src/social.rs:
crates/serving/src/trace.rs:
