/root/repo/target/release/deps/bdb_telemetry-9d596fbe53a3c4bf.d: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libbdb_telemetry-9d596fbe53a3c4bf.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libbdb_telemetry-9d596fbe53a3c4bf.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/chrome_trace.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/chrome_trace.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
