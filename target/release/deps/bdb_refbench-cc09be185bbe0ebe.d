/root/repo/target/release/deps/bdb_refbench-cc09be185bbe0ebe.d: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

/root/repo/target/release/deps/libbdb_refbench-cc09be185bbe0ebe.rlib: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

/root/repo/target/release/deps/libbdb_refbench-cc09be185bbe0ebe.rmeta: crates/refbench/src/lib.rs crates/refbench/src/hpcc.rs crates/refbench/src/parsec.rs crates/refbench/src/spec.rs

crates/refbench/src/lib.rs:
crates/refbench/src/hpcc.rs:
crates/refbench/src/parsec.rs:
crates/refbench/src/spec.rs:
