/root/repo/target/release/deps/bdb_datagen-ec7b4853ba0bcd93.d: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs

/root/repo/target/release/deps/libbdb_datagen-ec7b4853ba0bcd93.rlib: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs

/root/repo/target/release/deps/libbdb_datagen-ec7b4853ba0bcd93.rmeta: crates/datagen/src/lib.rs crates/datagen/src/convert.rs crates/datagen/src/graph.rs crates/datagen/src/resume.rs crates/datagen/src/review.rs crates/datagen/src/seeds.rs crates/datagen/src/stats.rs crates/datagen/src/table.rs crates/datagen/src/text.rs

crates/datagen/src/lib.rs:
crates/datagen/src/convert.rs:
crates/datagen/src/graph.rs:
crates/datagen/src/resume.rs:
crates/datagen/src/review.rs:
crates/datagen/src/seeds.rs:
crates/datagen/src/stats.rs:
crates/datagen/src/table.rs:
crates/datagen/src/text.rs:
