/root/repo/target/release/deps/bytes-f2e1c48f1e747514.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f2e1c48f1e747514.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f2e1c48f1e747514.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
