/root/repo/target/release/deps/bdb_graph-f092698976a69bb8.d: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

/root/repo/target/release/deps/libbdb_graph-f092698976a69bb8.rlib: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

/root/repo/target/release/deps/libbdb_graph-f092698976a69bb8.rmeta: crates/graph/src/lib.rs crates/graph/src/bfs.rs crates/graph/src/cc.rs crates/graph/src/csr.rs crates/graph/src/pagerank.rs crates/graph/src/trace.rs

crates/graph/src/lib.rs:
crates/graph/src/bfs.rs:
crates/graph/src/cc.rs:
crates/graph/src/csr.rs:
crates/graph/src/pagerank.rs:
crates/graph/src/trace.rs:
