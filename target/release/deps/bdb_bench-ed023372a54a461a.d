/root/repo/target/release/deps/bdb_bench-ed023372a54a461a.d: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbdb_bench-ed023372a54a461a.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libbdb_bench-ed023372a54a461a.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs crates/bench/src/results.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
crates/bench/src/results.rs:
crates/bench/src/table.rs:
