/root/repo/target/release/deps/bigdatabench-7efc3e1a7486f453.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/suite.rs crates/core/src/workload.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/ecommerce.rs crates/core/src/workloads/micro.rs crates/core/src/workloads/oltp.rs crates/core/src/workloads/query.rs crates/core/src/workloads/search.rs crates/core/src/workloads/service.rs crates/core/src/workloads/social.rs

/root/repo/target/release/deps/libbigdatabench-7efc3e1a7486f453.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/suite.rs crates/core/src/workload.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/ecommerce.rs crates/core/src/workloads/micro.rs crates/core/src/workloads/oltp.rs crates/core/src/workloads/query.rs crates/core/src/workloads/search.rs crates/core/src/workloads/service.rs crates/core/src/workloads/social.rs

/root/repo/target/release/deps/libbigdatabench-7efc3e1a7486f453.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/report.rs crates/core/src/scale.rs crates/core/src/suite.rs crates/core/src/workload.rs crates/core/src/workloads/mod.rs crates/core/src/workloads/ecommerce.rs crates/core/src/workloads/micro.rs crates/core/src/workloads/oltp.rs crates/core/src/workloads/query.rs crates/core/src/workloads/search.rs crates/core/src/workloads/service.rs crates/core/src/workloads/social.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/report.rs:
crates/core/src/scale.rs:
crates/core/src/suite.rs:
crates/core/src/workload.rs:
crates/core/src/workloads/mod.rs:
crates/core/src/workloads/ecommerce.rs:
crates/core/src/workloads/micro.rs:
crates/core/src/workloads/oltp.rs:
crates/core/src/workloads/query.rs:
crates/core/src/workloads/search.rs:
crates/core/src/workloads/service.rs:
crates/core/src/workloads/social.rs:
