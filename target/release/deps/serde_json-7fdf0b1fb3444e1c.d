/root/repo/target/release/deps/serde_json-7fdf0b1fb3444e1c.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7fdf0b1fb3444e1c.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7fdf0b1fb3444e1c.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
