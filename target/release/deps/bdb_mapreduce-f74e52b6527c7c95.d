/root/repo/target/release/deps/bdb_mapreduce-f74e52b6527c7c95.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

/root/repo/target/release/deps/libbdb_mapreduce-f74e52b6527c7c95.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

/root/repo/target/release/deps/libbdb_mapreduce-f74e52b6527c7c95.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/codec.rs crates/mapreduce/src/engine.rs crates/mapreduce/src/job.rs crates/mapreduce/src/spill.rs crates/mapreduce/src/trace.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/codec.rs:
crates/mapreduce/src/engine.rs:
crates/mapreduce/src/job.rs:
crates/mapreduce/src/spill.rs:
crates/mapreduce/src/trace.rs:
