/root/repo/target/release/deps/serde-7179c0eb1c0de6db.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7179c0eb1c0de6db.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7179c0eb1c0de6db.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
