/root/repo/target/release/deps/reproduce-a79b6e04aafbda7b.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-a79b6e04aafbda7b: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
