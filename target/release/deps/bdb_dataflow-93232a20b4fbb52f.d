/root/repo/target/release/deps/bdb_dataflow-93232a20b4fbb52f.d: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

/root/repo/target/release/deps/libbdb_dataflow-93232a20b4fbb52f.rlib: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

/root/repo/target/release/deps/libbdb_dataflow-93232a20b4fbb52f.rmeta: crates/dataflow/src/lib.rs crates/dataflow/src/dataset.rs crates/dataflow/src/trace.rs

crates/dataflow/src/lib.rs:
crates/dataflow/src/dataset.rs:
crates/dataflow/src/trace.rs:
