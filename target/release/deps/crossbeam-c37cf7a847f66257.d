/root/repo/target/release/deps/crossbeam-c37cf7a847f66257.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c37cf7a847f66257.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c37cf7a847f66257.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
