/root/repo/target/release/deps/bdb_archsim-fbec9ed880f0b6f6.d: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs

/root/repo/target/release/deps/libbdb_archsim-fbec9ed880f0b6f6.rlib: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs

/root/repo/target/release/deps/libbdb_archsim-fbec9ed880f0b6f6.rmeta: crates/archsim/src/lib.rs crates/archsim/src/cache.rs crates/archsim/src/layout.rs crates/archsim/src/machine.rs crates/archsim/src/metrics.rs crates/archsim/src/probe.rs crates/archsim/src/timing.rs crates/archsim/src/tlb.rs

crates/archsim/src/lib.rs:
crates/archsim/src/cache.rs:
crates/archsim/src/layout.rs:
crates/archsim/src/machine.rs:
crates/archsim/src/metrics.rs:
crates/archsim/src/probe.rs:
crates/archsim/src/timing.rs:
crates/archsim/src/tlb.rs:
