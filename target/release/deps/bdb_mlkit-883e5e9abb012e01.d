/root/repo/target/release/deps/bdb_mlkit-883e5e9abb012e01.d: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

/root/repo/target/release/deps/libbdb_mlkit-883e5e9abb012e01.rlib: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

/root/repo/target/release/deps/libbdb_mlkit-883e5e9abb012e01.rmeta: crates/mlkit/src/lib.rs crates/mlkit/src/bayes.rs crates/mlkit/src/cf.rs crates/mlkit/src/kmeans.rs

crates/mlkit/src/lib.rs:
crates/mlkit/src/bayes.rs:
crates/mlkit/src/cf.rs:
crates/mlkit/src/kmeans.rs:
