/root/repo/target/release/deps/parking_lot-18e8096a3cb8520b.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-18e8096a3cb8520b.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-18e8096a3cb8520b.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
