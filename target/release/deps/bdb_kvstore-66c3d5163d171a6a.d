/root/repo/target/release/deps/bdb_kvstore-66c3d5163d171a6a.d: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

/root/repo/target/release/deps/libbdb_kvstore-66c3d5163d171a6a.rlib: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

/root/repo/target/release/deps/libbdb_kvstore-66c3d5163d171a6a.rmeta: crates/kvstore/src/lib.rs crates/kvstore/src/bloom.rs crates/kvstore/src/memtable.rs crates/kvstore/src/sstable.rs crates/kvstore/src/store.rs crates/kvstore/src/trace.rs crates/kvstore/src/wal.rs

crates/kvstore/src/lib.rs:
crates/kvstore/src/bloom.rs:
crates/kvstore/src/memtable.rs:
crates/kvstore/src/sstable.rs:
crates/kvstore/src/store.rs:
crates/kvstore/src/trace.rs:
crates/kvstore/src/wal.rs:
