/root/repo/target/release/deps/bdb_sql-e1b79695869f6648.d: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

/root/repo/target/release/deps/libbdb_sql-e1b79695869f6648.rlib: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

/root/repo/target/release/deps/libbdb_sql-e1b79695869f6648.rmeta: crates/sql/src/lib.rs crates/sql/src/exec.rs crates/sql/src/expr.rs crates/sql/src/parser.rs crates/sql/src/schema.rs crates/sql/src/table.rs crates/sql/src/trace.rs crates/sql/src/value.rs

crates/sql/src/lib.rs:
crates/sql/src/exec.rs:
crates/sql/src/expr.rs:
crates/sql/src/parser.rs:
crates/sql/src/schema.rs:
crates/sql/src/table.rs:
crates/sql/src/trace.rs:
crates/sql/src/value.rs:
