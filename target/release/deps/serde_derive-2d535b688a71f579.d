/root/repo/target/release/deps/serde_derive-2d535b688a71f579.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2d535b688a71f579.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
