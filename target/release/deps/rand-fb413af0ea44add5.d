/root/repo/target/release/deps/rand-fb413af0ea44add5.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fb413af0ea44add5.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fb413af0ea44add5.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
