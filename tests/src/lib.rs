//! Cross-crate integration tests for BigDataBench-RS.
//!
//! This crate holds no library code; see `tests/` for the integration
//! suites spanning the workspace (end-to-end workload runs, the paper's
//! shape claims at test scale, and generator-to-workload pipelines).
