//! Golden-file tests for the workload characterization artifacts: the
//! JSON emission must be byte-stable for a fixed input and seed, the
//! text heatmap must keep its grid aligned under hostile workload
//! names, and the committed repo-root `charmap.json` must stay
//! consistent with the committed `BENCH_RESULTS.json`.

use bdb_charmap::{analyze, report::Baseline, AnalysisInput, MetricVector, DEFAULT_SEED};
use std::path::{Path, PathBuf};

/// A fixed synthetic 8-workload input (three obvious families), so the
/// golden file does not depend on simulator internals: simulator
/// changes legitimately reshape the live map, but the analysis +
/// emission pipeline itself must stay byte-stable.
fn fixed_input() -> AnalysisInput {
    let mk = |name: &str, ipc: f64, l2: f64, fp: f64| MetricVector {
        name: name.into(),
        values: vec![ipc, l2, fp, ipc * 1900.0, 7.0],
    };
    AnalysisInput {
        machine: "Golden Machine".into(),
        fraction: 0.5,
        features: vec![
            "ipc".into(),
            "l2_mpki".into(),
            "fp_frac".into(),
            "mips".into(),
            "constant".into(),
        ],
        vectors: vec![
            mk("WordCount", 1.30, 9.5, 0.001),
            mk("Grep", 1.25, 9.9, 0.002),
            mk("Sort", 0.30, 27.0, 0.001),
            mk("Scan", 0.33, 26.0, 0.002),
            mk("K-means", 1.05, 10.9, 0.076),
            mk("PageRank", 1.06, 12.1, 0.010),
            mk("Join Query", 0.95, 15.5, 0.002),
            mk("Read", 0.90, 16.0, 0.003),
        ],
    }
}

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/charmap.json")
}

#[test]
fn json_artifact_byte_matches_the_committed_golden() {
    let map = analyze(&fixed_input(), DEFAULT_SEED).expect("analyzes");
    let fresh = map.to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).expect("mkdir golden/");
        std::fs::write(golden_path(), &fresh).expect("write golden");
    }
    let committed = std::fs::read_to_string(golden_path())
        .expect("tests/golden/charmap.json committed (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        fresh, committed,
        "charmap.json emission drifted from the golden; if intentional, \
         regenerate with: UPDATE_GOLDEN=1 cargo test -p bdb-integration charmap"
    );
    // The golden is also a valid baseline under the stability rule.
    bdb_charmap::validate_baseline(&map, &committed).expect("golden validates against itself");
}

#[test]
fn heatmap_grid_is_stable_under_hostile_workload_names() {
    let mut input = fixed_input();
    input.vectors[0].name = "Word Count \"v2\" (テスト) — a very, very long hostile name".into();
    input.vectors[1].name = "x".into();
    input.vectors[2].name = "tabs\tand\nnewlines".into();
    let map = analyze(&input, DEFAULT_SEED).expect("analyzes");
    let text = map.to_text();

    // Heatmap rows (header + one per workload) all share one rendered
    // width: labels are indices, names live only in the legend.
    let rows: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.contains("Pairwise distance heatmap"))
        .skip(1)
        .take_while(|l| !l.contains("legend"))
        .collect();
    assert_eq!(rows.len(), map.workloads.len() + 1, "header + n rows:\n{text}");
    let widths: std::collections::BTreeSet<usize> =
        rows.iter().map(|r| r.chars().count()).collect();
    assert_eq!(widths.len(), 1, "uniform heatmap width, got {widths:?}:\n{text}");
    // Every workload appears in the legend, hostile or not.
    for (i, _) in map.workloads.iter().enumerate() {
        assert!(text.contains(&format!("[{i}]")), "legend entry [{i}] present");
    }
    // And the JSON artifact round-trips those names exactly.
    let baseline = Baseline::parse(&map.to_json()).expect("hostile names re-parse");
    assert_eq!(baseline.workloads, map.workloads);
}

#[test]
fn committed_repo_artifacts_are_mutually_consistent() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().to_path_buf();
    let charmap = std::fs::read_to_string(root.join("charmap.json"))
        .expect("repo-root charmap.json committed");
    let bench = std::fs::read_to_string(root.join("BENCH_RESULTS.json"))
        .expect("repo-root BENCH_RESULTS.json committed");
    let baseline = Baseline::parse(&charmap).expect("committed charmap parses");

    assert_eq!(baseline.seed, DEFAULT_SEED, "committed map uses the default seed");
    assert!(!baseline.subset.is_empty());
    assert!(baseline.subset.len() < baseline.workloads.len(), "subset is a strict subset");
    assert_eq!(baseline.k, baseline.subset.len(), "one representative per cluster");
    for name in &baseline.subset {
        assert!(baseline.workloads.contains(name), "{name} is a tracked workload");
        // Every representative must be gateable against the committed
        // bench baseline: compare_json_subset requires it there.
        assert!(
            bench.contains(&format!("\"name\":\"{name}\"")),
            "{name} present in BENCH_RESULTS.json"
        );
    }
    // Both artifacts describe the same run configuration.
    let bench_doc: serde_json::Value = serde_json::from_str(&bench).expect("bench JSON");
    assert_eq!(
        bench_doc.get("machine").and_then(|m| m.as_str()),
        Some(baseline.machine.as_str()),
        "same simulated machine"
    );
    assert_eq!(
        bench_doc.get("fraction").and_then(serde_json::Value::as_f64),
        Some(baseline.fraction),
        "same input fraction"
    );
}
