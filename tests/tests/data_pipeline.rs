//! Generator-to-substrate pipelines: BDGS output feeding every engine.

use bdb_datagen::convert::{resumes_to_kv, reviews_to_labeled, reviews_to_ratings};
use bdb_datagen::{GraphGenerator, ResumeGenerator, ReviewGenerator, RmatParams};
use bdb_graph::{bfs, CsrGraph};
use bdb_kvstore::Store;
use bdb_mlkit::{ItemCf, NaiveBayes};
use bdb_serving::loadgen::run_closed_loop;
use bdb_serving::search::SearchServer;

#[test]
fn resumes_flow_into_the_store_and_back() {
    let dir = std::env::temp_dir().join(format!("bdb-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let resumes = ResumeGenerator::new(7).generate(500);
    let mut store = Store::open(&dir).expect("open");
    for (k, v) in resumes_to_kv(&resumes) {
        store.put(k.into_bytes(), v.into_bytes()).expect("put");
    }
    store.flush().expect("flush");
    // Point reads and a range scan over the generated keys.
    let got = store.get(b"resume000000000042").expect("get").expect("present");
    assert!(String::from_utf8(got).expect("utf8").contains("inst="));
    let rows = store.scan(b"resume000000000100", b"resume000000000110").expect("scan");
    assert_eq!(rows.len(), 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generated_graph_is_traversable() {
    let edges = GraphGenerator::new(RmatParams::google_web(), 9).generate(2048);
    let graph = CsrGraph::from_edges(edges.nodes, &edges.edges);
    let levels = bfs::bfs(&graph, 0);
    let reached = levels.iter().flatten().count();
    assert!(reached > 100, "web graphs have a giant component: {reached}");
    let partitioned = bfs::bfs_partitioned(&graph, 0, 4);
    assert_eq!(partitioned.levels, levels);
}

#[test]
fn reviews_train_both_ml_workloads() {
    let reviews = ReviewGenerator::new(11).generate(5_000);
    // CF over the ratings view.
    let cf = ItemCf::train(&reviews_to_ratings(&reviews), 10);
    assert!(cf.item_count() > 10);
    let rec = cf.recommend(1, 5);
    assert!(rec.len() <= 5);
    // Bayes over the labeled-text view; sentiment must be learnable.
    let docs: Vec<(usize, String)> = reviews_to_labeled(&reviews)
        .lines()
        .map(|l| {
            let (label, text) = l.split_once('\t').expect("format");
            ((label == "pos") as usize, text.to_owned())
        })
        .collect();
    let split = docs.len() * 4 / 5;
    let model = NaiveBayes::train(&docs[..split], 2);
    assert!(model.accuracy(&docs[split..]) > 0.7);
}

#[test]
fn search_server_serves_generated_corpus() {
    let mut server = SearchServer::build(500, 13);
    let report = run_closed_loop(&mut server, 300, 17);
    assert_eq!(report.completed, 300);
    assert!(report.result_units > 0, "queries should find documents");
}
