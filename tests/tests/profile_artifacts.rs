//! Cross-crate integration tests for the profiling pipeline: span
//! stream → `bdb-profile` → folded stacks / critical path / worker
//! utilization, plus the `JobStats::critical_path` summary an
//! instrumented MapReduce run carries.

use bdb_profile::Profile;
use bdb_telemetry::{ArgValue, SpanEvent};

fn span(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
    SpanEvent { name, cat: "test", start_us, dur_us: Some(dur_us), tid, args: Vec::new() }
}

/// A deterministic two-worker MapReduce timeline used by the golden
/// tests: coordinator on thread 1, one straggling map task on thread 2.
fn fixture_events() -> Vec<SpanEvent> {
    vec![
        span("job", 1, 0, 200),
        span("map-phase", 1, 0, 120),
        span("reduce-phase", 1, 120, 80),
        span("reduce-partition", 1, 125, 70),
        span("map-task", 2, 10, 100),
        span("spill", 2, 40, 20),
    ]
}

#[test]
fn golden_folded_stacks_for_a_deterministic_run() {
    let profile = Profile::from_events(&fixture_events());
    // Weights are self time: the phases tile `job` exactly (zero self,
    // omitted), `reduce-phase` keeps the 10 us outside its partition,
    // `map-task` keeps 100 − 20 spill = 80. Lines sort lexically.
    assert_eq!(
        profile.folded(),
        "worker-1;job;map-phase 120\n\
         worker-1;job;reduce-phase 10\n\
         worker-1;job;reduce-phase;reduce-partition 70\n\
         worker-2;map-task 80\n\
         worker-2;map-task;spill 20\n",
    );
}

#[test]
fn blame_table_partitions_the_critical_path_exactly() {
    let profile = Profile::from_events(&fixture_events());
    let cp = &profile.critical;
    assert_eq!(cp.wall_us, 200);
    assert_eq!(cp.path_us + cp.idle_us, cp.wall_us);
    let blamed: u64 = cp.blame.iter().map(|(_, us)| *us).sum();
    assert_eq!(blamed, cp.path_us, "phase blame sums exactly to the path length");
    // The straggler's lone stretch ([60,110): map-task after the spill)
    // is on the path under the map phase.
    let blame: std::collections::BTreeMap<_, _> = cp.blame.iter().cloned().collect();
    assert_eq!(blame["map"] + blame["spill"], 120, "map phase time splits map/spill");
    assert_eq!(blame["reduce"], 80);
}

#[test]
fn analyzer_tolerates_unclosed_spans_and_instants() {
    // A crash can leave spans without a duration; the analyzer must
    // skip them (never unwrap `dur_us`) and still profile the rest.
    let mut events = fixture_events();
    let mut unclosed = span("map-task", 3, 50, 0);
    unclosed.dur_us = None;
    events.push(unclosed);
    let mut marker = span("checkpoint", 1, 100, 0);
    marker.dur_us = None;
    events.push(marker);

    let profile = Profile::from_events(&events);
    assert_eq!(profile.forest.skipped, 2);
    assert_eq!(profile.forest.nodes.len(), 6, "closed spans all survive");
    assert!(profile.critical.path_us > 0);
    let report = profile.critpath_text();
    assert!(report.contains("2 skipped without duration"), "{report}");
}

#[test]
fn iteration_spans_blame_per_iteration() {
    let mut events = Vec::new();
    for (i, (start, dur)) in [(0u64, 30u64), (30, 50), (80, 20)].iter().enumerate() {
        let mut e = span("pagerank-iteration", 1, *start, *dur);
        e.args.push(("iter", ArgValue::Int(i as i64 + 1)));
        events.push(e);
    }
    let profile = Profile::from_events(&events);
    assert_eq!(profile.critical.blame[0], ("iter-2".to_owned(), 50));
    let total: u64 = profile.critical.blame.iter().map(|(_, us)| *us).sum();
    assert_eq!(total, 100);
}

#[test]
fn utilization_reports_per_worker_busy_and_concurrency() {
    let profile = Profile::from_events(&fixture_events());
    let u = &profile.utilization;
    assert_eq!(u.workers.len(), 2);
    assert_eq!(u.workers[0].busy_us, 200, "worker 1 busy the whole run");
    assert_eq!(u.workers[1].busy_us, 100, "worker 2 busy only during its task");
    assert_eq!(u.concurrency.iter().sum::<u64>(), u.wall_us());
    assert_eq!(u.concurrency[2], 100, "both busy while the map task runs");
    let text = profile.util_text();
    assert!(text.contains("workers 2"), "{text}");
    assert!(text.contains("worker-2"), "{text}");
    // The counter track closes at zero busy workers.
    assert_eq!(profile.concurrency_track().samples.last(), Some(&(200, 0)));
}

#[test]
fn instrumented_engine_run_profiles_end_to_end() {
    use bdb_archsim::Probe;
    use bdb_mapreduce::{Emitter, Engine, Job};

    struct WordCount;
    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);
        fn map<P: Probe + ?Sized>(
            &self,
            line: &String,
            emit: &mut Emitter<String, u64>,
            _p: &mut P,
        ) {
            for w in line.split_whitespace() {
                emit.emit(w.to_owned(), 1);
            }
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _p: &mut P,
        ) {
            out.push((key, values.into_iter().sum()));
        }
    }

    let telemetry = bdb_telemetry::SpanRecorder::enabled();
    let engine = Engine::builder().threads(2).reducers(2).telemetry(telemetry.clone()).build();
    let lines: Vec<String> =
        (0..500).map(|i| format!("alpha beta gamma delta-{}", i % 17)).collect();
    let (out, stats) = engine.run(&WordCount, &lines);
    assert!(!out.is_empty());

    // The engine's own summary and a from-scratch profile agree on the
    // headline: the job span covers ≥90% of wall.
    let cp = stats.critical_path.expect("telemetry attached");
    assert!(cp.coverage >= 0.9, "{cp:?}");
    let profile = Profile::from_events(&telemetry.events());
    let recomputed = profile.critical_summary();
    assert!(recomputed.coverage >= 0.9, "{recomputed:?}");
    assert_eq!(recomputed.wall_us, cp.wall_us);

    // All three artifacts render non-empty for a real run.
    assert!(profile.folded().contains("map-task"));
    assert!(profile.critpath_text().contains("blame"));
    assert!(profile.util_text().contains("utilization"));
    // And the blame table partitions the path within 1%.
    let blamed: u64 = profile.critical.blame.iter().map(|(_, us)| *us).sum();
    assert!(
        blamed.abs_diff(profile.critical.path_us) * 100 <= profile.critical.path_us,
        "blamed {blamed} vs path {}",
        profile.critical.path_us
    );
}
