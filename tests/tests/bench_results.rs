//! Golden test for the BENCH_RESULTS.json regression artifact: the
//! document must parse with `serde_json`, carry every gated metric for
//! all ten traced workloads, and its per-phase counters must sum to
//! the whole-run totals.

use bdb_bench::results::{collect, DEFAULT_WORKLOADS, SCHEMA_VERSION};

fn artifact() -> serde_json::Value {
    let results = collect(1.0 / 64.0, &DEFAULT_WORKLOADS);
    serde_json::from_str(&results.to_json()).expect("artifact must be valid JSON")
}

#[test]
fn artifact_has_every_required_metric_per_workload() {
    let v = artifact();
    assert_eq!(v.get("schema_version").and_then(serde_json::Value::as_u64), Some(SCHEMA_VERSION));
    assert!(v.get("machine").and_then(|m| m.as_str()).is_some());
    assert!(v.get("fraction").and_then(serde_json::Value::as_f64).is_some());

    let workloads = v.get("workloads").and_then(|w| w.as_array()).expect("workloads array");
    let names: Vec<&str> =
        workloads.iter().filter_map(|w| w.get("name").and_then(|n| n.as_str())).collect();
    for required in [
        "WordCount",
        "Sort",
        "PageRank",
        "Connected Components",
        "K-means",
        "Nutch Server",
        "Read",
        "Select Query",
        "Aggregate Query",
        "Join Query",
    ] {
        assert!(names.contains(&required), "missing {required} in {names:?}");
    }
    assert_eq!(names.len(), 10, "every traced workload is captured: {names:?}");

    for w in workloads {
        let name = w.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        for scalar in ["wall_ms", "metric_value", "mips", "ipc"] {
            let value = w.get(scalar).and_then(serde_json::Value::as_f64);
            assert!(value.is_some(), "{name}: {scalar} present");
        }
        assert!(w.get("instructions").and_then(serde_json::Value::as_u64).unwrap_or(0) > 0);
        assert!(
            w.get("dram_bytes").and_then(serde_json::Value::as_u64).is_some(),
            "{name}: dram_bytes present"
        );
        let mpki = w.get("mpki").expect("mpki object");
        for level in ["l1i", "l1d", "l2", "l3", "itlb", "dtlb", "branch"] {
            assert!(
                mpki.get(level).and_then(serde_json::Value::as_f64).is_some(),
                "{name}: mpki.{level} present"
            );
        }
        let mix = w.get("mix").expect("mix object");
        let mix_sum: f64 = ["load", "store", "branch", "int", "fp"]
            .iter()
            .map(|c| mix.get(c).and_then(serde_json::Value::as_f64).expect("mix fraction"))
            .sum();
        assert!((mix_sum - 1.0).abs() < 1e-6, "{name}: mix fractions sum to 1, got {mix_sum}");
        assert!(w.get("int_per_dram_byte").and_then(serde_json::Value::as_f64).is_some());
        assert!(w.get("fp_per_dram_byte").and_then(serde_json::Value::as_f64).is_some());
    }
}

#[test]
fn phase_counters_sum_to_whole_run_totals() {
    let v = artifact();
    for w in v.get("workloads").and_then(|w| w.as_array()).expect("workloads array") {
        let name = w.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let phases = w.get("phases").and_then(|p| p.as_array()).expect("phases array");
        if phases.is_empty() {
            // The closed-loop service and OLTP runs record no phase
            // marks; everything batch-shaped must.
            assert!(
                ["Nutch Server", "Read"].contains(&name),
                "{name}: per-phase breakdown recorded"
            );
            continue;
        }
        let total = |key: &str| w.get(key).and_then(serde_json::Value::as_u64).unwrap();
        let phase_sum = |key: &str| -> u64 {
            phases.iter().map(|p| p.get(key).and_then(serde_json::Value::as_u64).unwrap()).sum()
        };
        assert_eq!(
            phase_sum("instructions"),
            total("instructions"),
            "{name}: phase instructions partition the run"
        );
        assert_eq!(phase_sum("cycles"), total("cycles"), "{name}: phase cycles partition the run");
    }
}
