//! Golden test: the Chrome trace-event JSON emitted by the telemetry
//! layer must be a valid trace-event array — parseable by `serde_json`
//! and structurally loadable by `chrome://tracing` / Perfetto.

use bdb_mapreduce::{Emitter, Engine, Job};
use bdb_telemetry::TraceSession;
use std::collections::HashMap;

struct WordCount;
impl Job for WordCount {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = (String, u64);
    fn map<P: bdb_archsim::Probe + ?Sized>(
        &self,
        line: &String,
        emit: &mut Emitter<String, u64>,
        _p: &mut P,
    ) {
        for w in line.split_whitespace() {
            emit.emit(w.to_owned(), 1);
        }
    }
    fn combine(&self, _k: &String, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }
    fn reduce<P: bdb_archsim::Probe + ?Sized>(
        &self,
        key: String,
        values: Vec<u64>,
        out: &mut Vec<(String, u64)>,
        _p: &mut P,
    ) {
        out.push((key, values.into_iter().sum()));
    }
}

/// Produces a trace from a real multi-threaded engine run.
fn traced_session() -> TraceSession {
    let session = TraceSession::enabled("Golden WordCount");
    let engine = Engine::builder()
        .threads(3)
        .reducers(2)
        .map_buffer_bytes(1024) // force spill spans into the trace
        .telemetry(session.recorder.clone())
        .metrics(session.metrics.clone())
        .build();
    let lines: Vec<String> =
        (0..300).map(|i| format!("alpha beta gamma delta-{} epsilon", i % 17)).collect();
    let (out, _) = engine.run(&WordCount, &lines);
    assert!(!out.is_empty());
    session
}

#[test]
fn emitted_json_is_a_valid_chrome_trace_event_array() {
    let session = traced_session();
    let json = session.trace_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
    let events = parsed.as_array().expect("trace-event format is a JSON array");
    assert!(!events.is_empty(), "an instrumented run produces events");

    let mut span_count = 0;
    let mut saw_process_name = false;
    let mut last_ts_per_tid: HashMap<u64, u64> = HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("every event has a ph");
        assert!(
            matches!(ph, "X" | "i" | "M" | "C"),
            "only complete/instant/metadata/counter events are emitted, got {ph:?}"
        );
        assert!(e.get("pid").and_then(serde_json::Value::as_u64).is_some());
        assert!(e.get("ts").and_then(serde_json::Value::as_u64).is_some());
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        match ph {
            "X" => {
                span_count += 1;
                let ts = e.get("ts").and_then(serde_json::Value::as_u64).unwrap();
                let tid = e.get("tid").and_then(serde_json::Value::as_u64).expect("X has tid");
                assert!(e.get("dur").and_then(serde_json::Value::as_u64).is_some(), "X has dur");
                // Complete events must be ordered by start time per thread
                // (the recorder sorts globally, which implies per-tid order).
                let last = last_ts_per_tid.entry(tid).or_insert(0);
                assert!(ts >= *last, "ts monotonic per tid {tid}: {ts} < {last}");
                *last = ts;
            }
            "M" if e.get("name").and_then(|v| v.as_str()) == Some("process_name") => {
                saw_process_name = true;
            }
            _ => {}
        }
    }
    assert!(saw_process_name, "process_name metadata present");
    assert!(span_count >= 5, "job + phases + tasks all become spans: {span_count}");

    // The engine's metrics flow into counter samples.
    let counters: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(
        counters.iter().any(|n| n.starts_with("mapreduce.")),
        "mapreduce counters exported: {counters:?}"
    );
}

#[test]
fn balanced_span_names_cover_all_engine_phases() {
    let session = traced_session();
    let json = session.trace_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let names: Vec<String> = parsed
        .as_array()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()).map(str::to_owned))
        .collect();
    for expected in ["job", "map-phase", "map-task", "reduce-phase", "reduce-partition", "spill"] {
        assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
    }
}

#[test]
fn traced_run_trace_has_counter_tracks_with_multiple_samples() {
    use bdb_archsim::{CounterSnapshot, MachineConfig, SimProbe};
    use std::collections::HashMap;

    // A traced (simulated-counter) run: spans carry `counter.*` deltas,
    // each rendered as a "ph":"C" sample. Perfetto needs at least two
    // samples per counter to draw a track over time.
    let session = TraceSession::enabled("Counter Tracks");
    let engine = Engine::builder()
        .reducers(2)
        .map_buffer_bytes(2048) // force spill spans into the trace
        .telemetry(session.recorder.clone())
        .metrics(session.metrics.clone())
        .build();
    let lines: Vec<String> =
        (0..400).map(|i| format!("alpha beta gamma delta-{} epsilon", i % 17)).collect();
    let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
    let (out, _) = engine.run_traced(&WordCount, &lines, &mut probe);
    assert!(!out.is_empty());

    let json = session.trace_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let mut samples: HashMap<String, usize> = HashMap::new();
    for e in parsed.as_array().expect("array") {
        if e.get("ph").and_then(|v| v.as_str()) != Some("C") {
            continue;
        }
        let name = e.get("name").and_then(|v| v.as_str()).expect("counter name");
        if name.starts_with("counter.") {
            assert!(
                e.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(serde_json::Value::as_u64)
                    .is_some(),
                "counter sample carries a numeric value"
            );
            *samples.entry(name.to_owned()).or_insert(0) += 1;
        }
    }
    // Every tracked counter appears, and with enough samples for a track.
    for (key, _) in CounterSnapshot::default().named_counters() {
        let n = samples.get(key).copied().unwrap_or(0);
        assert!(n >= 2, "{key}: need >= 2 samples for a counter track, got {n}");
    }
}

#[test]
fn metrics_summary_is_plain_text_with_counters() {
    let session = traced_session();
    let summary = session.metrics_summary();
    assert!(summary.contains("== metrics: Golden WordCount =="));
    assert!(summary.contains("mapreduce.map_records"));
    assert!(summary.contains("counter"));
}
