//! End-to-end integration: every workload runs natively and traced,
//! reports sane metrics, and the figure plumbing produces data.

use bigdatabench::{characterize, MachineConfig, MetricKind, Suite, UserMetric, WorkloadId};

#[test]
fn all_nineteen_workloads_run_natively() {
    let suite = Suite::quick();
    let reports = suite.run_all_native(1);
    assert_eq!(reports.len(), 19);
    for r in &reports {
        assert!(r.metric.value() > 0.0, "{} reported zero {}", r.workload, r.metric.unit());
    }
}

#[test]
fn metric_families_match_application_types() {
    let suite = Suite::quick();
    for id in WorkloadId::ALL {
        let report = suite.run_native(id, 1);
        let expected = match id.application_type() {
            bigdatabench::ApplicationType::OnlineService => {
                // Cloud OLTP reports OPS; the three servers report RPS.
                match id {
                    WorkloadId::Read | WorkloadId::Write | WorkloadId::Scan => MetricKind::Ops,
                    _ => MetricKind::Rps,
                }
            }
            _ => MetricKind::Dps,
        };
        assert_eq!(report.metric.kind(), expected, "{id}");
    }
}

#[test]
fn all_nineteen_workloads_run_traced() {
    let suite = Suite::quick();
    let machine = MachineConfig::xeon_e5645();
    for id in WorkloadId::ALL {
        let r = suite.run_traced(id, 1, machine.clone());
        assert!(r.instructions() > 500, "{id}: {} instructions", r.instructions());
        assert!(r.cycles > 0, "{id}");
        assert!(r.mips() > 0.0, "{id}");
        assert!(r.l3.is_some(), "{id}: E5645 has an L3");
    }
}

#[test]
fn e5310_runs_without_l3() {
    let suite = Suite::quick();
    let r = suite.run_traced(WorkloadId::Grep, 1, MachineConfig::xeon_e5310());
    assert!(r.l3.is_none());
    assert_eq!(r.l3_mpki(), 0.0);
}

#[test]
fn figure3_sweep_produces_five_points() {
    let suite = Suite::with_fraction(1.0 / 32.0);
    let rows =
        characterize::figure3_for(&suite, WorkloadId::WordCount, &MachineConfig::xeon_e5645());
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].multiplier, 1);
    assert_eq!(rows[4].multiplier, 32);
    assert!((rows[0].speedup - 1.0).abs() < 1e-9);
}

#[test]
fn traced_runs_are_deterministic() {
    let suite = Suite::quick();
    let machine = MachineConfig::xeon_e5645();
    let a = suite.run_traced(WorkloadId::SelectQuery, 1, machine.clone());
    let b = suite.run_traced(WorkloadId::SelectQuery, 1, machine);
    assert_eq!(a.instructions(), b.instructions());
    assert_eq!(a.l1i.stats, b.l1i.stats);
    assert_eq!(a.dram_bytes, b.dram_bytes);
}

#[test]
fn services_saturate_under_heavy_offered_load() {
    let suite = Suite::quick();
    let light = suite.run_native(WorkloadId::RubisServer, 1);
    let heavy = suite.run_native(WorkloadId::RubisServer, 32);
    let UserMetric::Rps { offered: o1, achieved: a1, .. } = light.metric else {
        panic!("RPS expected")
    };
    let UserMetric::Rps { offered: o32, achieved: a32, .. } = heavy.metric else {
        panic!("RPS expected")
    };
    assert_eq!(o1 * 32.0, o32);
    // Light load tracks the offered rate...
    assert!((a1 - o1).abs() / o1 < 0.25, "light: {a1} vs {o1}");
    // ...heavy load cannot exceed it and the ratio achieved/offered drops.
    assert!(a32 / o32 <= a1 / o1 + 0.05, "saturation trend");
}

#[test]
fn sort_spills_only_at_large_inputs() {
    let suite = Suite::new();
    let small = suite.run_native(WorkloadId::Sort, 1);
    let large = suite.run_native(WorkloadId::Sort, 32);
    let spills = |detail: &str| -> u64 {
        detail
            .split(", ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("spill count in detail")
    };
    assert_eq!(spills(&small.detail), 0, "1 MiB fits the 8 MiB sort buffer");
    assert!(spills(&large.detail) > 0, "32 MiB must spill: {}", large.detail);
}
