//! Differential tests: the vectorized columnar engine against the
//! row-at-a-time oracle in `bdb_sql::exec`.
//!
//! The kernels promise more than multiset equality — selection preserves
//! row order, aggregation orders by group key, and the partitioned join
//! emits probe order with build chains in row order — so every property
//! here asserts *exact* equality (values, row order, and float bits)
//! against the row engine over randomly generated tables with nullable
//! ints, floats, dictionary-encoded strings and dates.

use bdb_sql::exec;
use bdb_sql::expr::{col, lit, Expr};
use bdb_sql::kernel;
use bdb_sql::{Aggregation, ColumnType, ColumnarTable, Schema, Table, Value};
use proptest::prelude::*;

/// One generated row: null mask plus raw cell material.
type RawRow = (u8, i64, f64, u8, u32);

const STR_POOL: [&str; 3] = ["alpha", "bb", "c"];

fn table_from(name: &str, rows: &[RawRow]) -> Table {
    let mut t = Table::new(
        name,
        Schema::new(&[
            ("k", ColumnType::Int),
            ("x", ColumnType::Float),
            ("s", ColumnType::Str),
            ("d", ColumnType::Date),
        ]),
    );
    for &(mask, k, x, sc, d) in rows {
        t.push_row(vec![
            if mask & 1 != 0 { Value::Null } else { Value::Int(k) },
            if mask & 2 != 0 { Value::Null } else { Value::Float(x) },
            if mask & 4 != 0 {
                Value::Null
            } else {
                Value::Str(STR_POOL[sc as usize % STR_POOL.len()].to_owned())
            },
            Value::Date(d % 1000),
        ])
        .expect("schema");
    }
    t
}

fn predicate(kind: u8, ithr: i64, fthr: f64, sc: u8) -> Expr {
    match kind % 7 {
        0 => col("k").gt(lit(ithr)),
        1 => col("x").le(lit(fthr)),
        2 => col("s").eq(lit(STR_POOL[sc as usize % STR_POOL.len()])),
        3 => col("k").gt(lit(ithr)).and(col("x").le(lit(fthr))),
        4 => col("k").le(lit(ithr)).or(col("s").ne(lit(STR_POOL[sc as usize % STR_POOL.len()]))),
        5 => col("x").gt(lit(fthr)).not(),
        // Cross-type comparison: constant-folds in the columnar engine,
        // evaluated per row in the oracle — must still agree.
        _ => col("s").gt(lit(ithr)),
    }
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<RawRow>> {
    proptest::collection::vec(
        (0u8..8, -20i64..20, -50.0f64..50.0, any::<u8>(), any::<u32>()),
        0..max,
    )
}

proptest! {
    /// Filter + late-materialized projection: identical rows, identical
    /// row order, for every predicate shape (typed fast paths, Kleene
    /// compounds, constant folds and the generic fallback).
    #[test]
    fn select_matches_row_oracle(
        rows in rows_strategy(300),
        kind in any::<u8>(),
        ithr in -20i64..20,
        fthr in -50.0f64..50.0,
        sc in any::<u8>(),
    ) {
        let t = table_from("t", &rows);
        let c = ColumnarTable::from_table(&t);
        let pred = predicate(kind, ithr, fthr, sc);
        let want = exec::select(&t, &pred, &["s", "k", "x"]).expect("oracle");
        let got = kernel::select(&c, &pred, &["s", "k", "x"]).expect("kernel");
        prop_assert_eq!(got, want);
    }

    /// Hash aggregation: identical groups, identical key order, and
    /// bit-identical float accumulation despite morsel-parallel
    /// partitioned execution.
    #[test]
    fn aggregate_matches_row_oracle(
        rows in rows_strategy(300),
        by_str in any::<bool>(),
    ) {
        let t = table_from("t", &rows);
        let c = ColumnarTable::from_table(&t);
        let gcol = if by_str { "s" } else { "k" };
        let aggs = [
            Aggregation::count(),
            Aggregation::sum("x"),
            Aggregation::avg("x"),
            Aggregation::min("x"),
            Aggregation::max("k"),
        ];
        let want = exec::aggregate(&t, gcol, &aggs).expect("oracle");
        let got = kernel::aggregate(&c, gcol, &aggs).expect("kernel");
        prop_assert_eq!(got, want);
    }

    /// Partitioned hash join: identical concatenated rows in identical
    /// probe order; NULL keys never join.
    #[test]
    fn join_matches_row_oracle(
        left in rows_strategy(120),
        right in rows_strategy(120),
        on_str in any::<bool>(),
    ) {
        let lt = table_from("l", &left);
        let rt = table_from("r", &right);
        let lc = ColumnarTable::from_table(&lt);
        let rc = ColumnarTable::from_table(&rt);
        let key = if on_str { "s" } else { "k" };
        let want = exec::hash_join(&lt, key, &rt, key).expect("oracle");
        let got = kernel::hash_join(&lc, key, &rc, key).expect("kernel");
        prop_assert_eq!(got, want);
    }

    /// Columnar conversion is lossless: round-tripping through
    /// `ColumnarTable` reproduces every cell (nulls included).
    #[test]
    fn columnar_round_trip_is_lossless(rows in rows_strategy(200)) {
        let t = table_from("t", &rows);
        let c = ColumnarTable::from_table(&t);
        let back = c.to_table();
        prop_assert_eq!(back.len(), t.len());
        for row in 0..t.len() {
            for colidx in 0..4 {
                prop_assert_eq!(back.value(row, colidx), t.value(row, colidx));
            }
        }
    }
}
