//! Simulated-metric comparison: the vectorized columnar engine must
//! beat the row-at-a-time engine on retired instructions AND DRAM
//! traffic for all three query workloads, at the same traced scale and
//! on the same simulated machine (Xeon E5645), each engine measured
//! with its own fresh `SimProbe` + `SqlTraceModel`.

use bdb_archsim::{CharacterizationReport, MachineConfig, SimProbe};
use bdb_sql::exec;
use bdb_sql::expr::{col, lit};
use bdb_sql::kernel;
use bdb_sql::{Aggregation, ColumnarTable, SqlTraceModel, Table};
use bigdatabench::workloads::query::{build_tables, ORDERS_BASELINE};
use bigdatabench::RunScale;

fn traced_tables() -> (Table, Table) {
    let scale = RunScale::quick();
    let n = scale.traced_units(ORDERS_BASELINE).max(50);
    build_tables(&scale, n)
}

/// Runs `q` under the row-engine warm/measure protocol.
fn row_traced(
    orders: &Table,
    items: &Table,
    q: impl Fn(&Table, &Table, &mut SimProbe, &mut Option<SqlTraceModel>),
) -> CharacterizationReport {
    let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
    let mut trace = Some(SqlTraceModel::new());
    trace.as_mut().expect("set").register_table(orders);
    trace.as_mut().expect("set").register_table(items);
    trace.as_mut().expect("set").warm(&mut probe);
    q(orders, items, &mut probe, &mut trace);
    probe.reset_stats();
    q(orders, items, &mut probe, &mut trace);
    probe.finish()
}

/// Runs `q` under the columnar warm/measure protocol.
fn columnar_traced(
    orders: &Table,
    items: &Table,
    q: impl Fn(&ColumnarTable, &ColumnarTable, &mut SimProbe, &mut Option<SqlTraceModel>),
) -> CharacterizationReport {
    let orders = ColumnarTable::from_table(orders);
    let items = ColumnarTable::from_table(items);
    let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
    let mut trace = Some(SqlTraceModel::new());
    trace.as_mut().expect("set").register_columnar(&orders);
    trace.as_mut().expect("set").register_columnar(&items);
    trace.as_mut().expect("set").warm(&mut probe);
    q(&orders, &items, &mut probe, &mut trace);
    probe.reset_stats();
    q(&orders, &items, &mut probe, &mut trace);
    probe.finish()
}

fn assert_strict_win(name: &str, row: &CharacterizationReport, colr: &CharacterizationReport) {
    assert!(
        colr.instructions() < row.instructions(),
        "{name}: columnar instructions {} must beat row {}",
        colr.instructions(),
        row.instructions()
    );
    assert!(
        colr.dram_bytes < row.dram_bytes,
        "{name}: columnar dram_bytes {} must beat row {}",
        colr.dram_bytes,
        row.dram_bytes
    );
}

#[test]
fn select_columnar_beats_row_engine() {
    let (orders, items) = traced_tables();
    let row = row_traced(&orders, &items, |_o, i, p, t| {
        exec::select_traced(
            i,
            &col("GOODS_PRICE").gt(lit(50.0)),
            &["ITEM_ID", "GOODS_AMOUNT"],
            p,
            t,
        )
        .expect("query");
    });
    let colr = columnar_traced(&orders, &items, |_o, i, p, t| {
        kernel::select_traced(
            i,
            &col("GOODS_PRICE").gt(lit(50.0)),
            &["ITEM_ID", "GOODS_AMOUNT"],
            p,
            t,
        )
        .expect("query");
    });
    assert_strict_win("select", &row, &colr);
}

#[test]
fn aggregate_columnar_beats_row_engine() {
    let (orders, items) = traced_tables();
    let aggs = [Aggregation::count(), Aggregation::sum("GOODS_AMOUNT")];
    let row = row_traced(&orders, &items, |_o, i, p, t| {
        exec::aggregate_traced(i, "GOODS_ID", &aggs, p, t).expect("query");
    });
    let colr = columnar_traced(&orders, &items, |_o, i, p, t| {
        kernel::aggregate_traced(i, "GOODS_ID", &aggs, p, t).expect("query");
    });
    assert_strict_win("aggregate", &row, &colr);
}

#[test]
fn join_columnar_beats_row_engine() {
    let (orders, items) = traced_tables();
    let row = row_traced(&orders, &items, |o, i, p, t| {
        exec::hash_join_traced(o, "ORDER_ID", i, "ORDER_ID", p, t).expect("join");
    });
    let colr = columnar_traced(&orders, &items, |o, i, p, t| {
        kernel::hash_join_traced(o, "ORDER_ID", i, "ORDER_ID", p, t).expect("join");
    });
    assert_strict_win("join", &row, &colr);
}

#[test]
fn traced_engines_agree_on_results() {
    // The sim comparison is only meaningful if both engines compute the
    // same answer under tracing.
    let (orders, items) = traced_tables();
    let co = ColumnarTable::from_table(&orders);
    let ci = ColumnarTable::from_table(&items);
    let mut probe = SimProbe::new(MachineConfig::xeon_e5645());
    let mut trace = Some(SqlTraceModel::new());
    trace.as_mut().expect("set").register_table(&orders);
    trace.as_mut().expect("set").register_table(&items);
    trace.as_mut().expect("set").register_columnar(&co);
    trace.as_mut().expect("set").register_columnar(&ci);
    let pred = col("GOODS_PRICE").gt(lit(50.0));
    let want =
        exec::select_traced(&items, &pred, &["ITEM_ID"], &mut probe, &mut trace).expect("row");
    let got =
        kernel::select_traced(&ci, &pred, &["ITEM_ID"], &mut probe, &mut trace).expect("columnar");
    assert_eq!(got, want);
    let want =
        exec::hash_join_traced(&orders, "ORDER_ID", &items, "ORDER_ID", &mut probe, &mut trace)
            .expect("row");
    let got = kernel::hash_join_traced(&co, "ORDER_ID", &ci, "ORDER_ID", &mut probe, &mut trace)
        .expect("columnar");
    assert_eq!(got, want);
}
