//! The paper's headline characterization claims, asserted at test scale.
//!
//! These are the same claims the `reproduce` binary's shape checks
//! evaluate at figure scale, pinned here at a smaller fraction so CI
//! catches regressions in the models.

use bdb_refbench::{characterize_suite, RefSuite};
use bigdatabench::{MachineConfig, Suite, WorkloadId};

fn suite() -> Suite {
    Suite::with_fraction(1.0 / 8.0)
}

#[test]
fn big_data_l1i_mpki_dwarfs_traditional() {
    // Paper §6.3.2: avg L1I MPKI of BigDataBench ≥ 4x traditional suites.
    let machine = MachineConfig::xeon_e5645();
    let hadoop = suite().run_traced(WorkloadId::WordCount, 1, machine.clone());
    let refbench = characterize_suite(RefSuite::Parsec, 1 << 16, machine);
    assert!(
        hadoop.l1i_mpki() > 4.0 * refbench.l1i_mpki().max(0.5),
        "WordCount {} vs PARSEC {}",
        hadoop.l1i_mpki(),
        refbench.l1i_mpki()
    );
}

#[test]
fn deep_stacks_show_itlb_pressure() {
    // Paper: ITLB MPKI of big data ≫ traditional (0.54 vs ≤ 0.08).
    let machine = MachineConfig::xeon_e5645();
    let service = suite().run_traced(WorkloadId::OlioServer, 1, machine.clone());
    let hpcc = characterize_suite(RefSuite::Hpcc, 1 << 16, machine);
    assert!(service.itlb_mpki() > 10.0 * hpcc.itlb_mpki().max(0.001));
}

#[test]
fn online_services_have_higher_l2_than_analytics() {
    // Paper: online services avg L2 MPKI ≈ 40 vs analytics ≈ 13.
    let machine = MachineConfig::xeon_e5645();
    let s = suite();
    let olio = s.run_traced(WorkloadId::OlioServer, 1, machine.clone());
    let wordcount = s.run_traced(WorkloadId::WordCount, 1, machine);
    assert!(
        olio.l2_mpki() > wordcount.l2_mpki(),
        "Olio {} vs WordCount {}",
        olio.l2_mpki(),
        wordcount.l2_mpki()
    );
}

#[test]
fn mpi_bfs_is_not_instruction_bound() {
    // Paper: BFS (MPI) is the data-side outlier, not the L1I outlier.
    let machine = MachineConfig::xeon_e5645();
    let s = suite();
    let bfs = s.run_traced(WorkloadId::Bfs, 1, machine.clone());
    let hadoop = s.run_traced(WorkloadId::Grep, 1, machine);
    assert!(bfs.l1i_mpki() < hadoop.l1i_mpki() / 2.0, "thin MPI runtime");
    assert!(bfs.dtlb_mpki() > hadoop.dtlb_mpki(), "scattered vertex state");
}

#[test]
fn int_fp_ratio_ordering() {
    // Paper Figure 4: Grep among the highest ratios, Bayes the lowest;
    // K-means and Bayes do real FP work.
    let machine = MachineConfig::xeon_e5645();
    let s = suite();
    let grep = s.run_traced(WorkloadId::Grep, 1, machine.clone());
    let bayes = s.run_traced(WorkloadId::NaiveBayes, 1, machine.clone());
    let kmeans = s.run_traced(WorkloadId::KMeans, 1, machine);
    assert!(bayes.mix.fp_ops > 0 && kmeans.mix.fp_ops > 0);
    assert!(
        grep.mix.int_to_fp_ratio() > bayes.mix.int_to_fp_ratio() * 5.0,
        "Grep {} vs Bayes {}",
        grep.mix.int_to_fp_ratio(),
        bayes.mix.int_to_fp_ratio()
    );
}

#[test]
fn specint_specfp_split() {
    let machine = MachineConfig::xeon_e5645();
    let int = characterize_suite(RefSuite::SpecInt, 1 << 16, machine.clone());
    let fp = characterize_suite(RefSuite::SpecFp, 1 << 16, machine);
    assert!(int.mix.int_to_fp_ratio() > 100.0);
    assert!(fp.mix.fp_ops > fp.mix.int_ops);
}

#[test]
fn l3_filters_most_l2_misses_for_hadoop_workloads() {
    // Paper: "L3 caches are effective for the big data applications".
    let machine = MachineConfig::xeon_e5645();
    let r = suite().run_traced(WorkloadId::Index, 1, machine);
    assert!(
        r.l3_mpki() < r.l2_mpki() / 3.0,
        "L3 {} should be well below L2 {}",
        r.l3_mpki(),
        r.l2_mpki()
    );
}

#[test]
fn stack_swap_moves_the_l1i_misses() {
    // The paper's stated future work (§6.3.2): replace the MapReduce
    // stack and see whether the front-end stalls follow the stack.
    // They do: the same WordCount on the in-memory dataflow engine has
    // a fraction of the Hadoop-style L1I misses.
    use bdb_archsim::Probe;
    use bdb_archsim::SimProbe;
    use bdb_dataflow::Dataset;
    use bdb_mapreduce::{Emitter, Engine, FrameworkModel, Job};

    struct Wc;
    impl Job for Wc {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = (String, u64);
        fn input_size(&self, line: &String) -> usize {
            line.len()
        }
        fn map<P: Probe + ?Sized>(&self, l: &String, e: &mut Emitter<String, u64>, _p: &mut P) {
            for w in l.split_whitespace() {
                e.emit(w.to_owned(), 1);
            }
        }
        fn combine(&self, _k: &String, v: Vec<u64>) -> Vec<u64> {
            vec![v.into_iter().sum()]
        }
        fn reduce<P: Probe + ?Sized>(
            &self,
            k: String,
            v: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _p: &mut P,
        ) {
            out.push((k, v.into_iter().sum()));
        }
    }

    let lines: Vec<String> = bdb_datagen::text::TextGenerator::wikipedia(3)
        .corpus(128 << 10)
        .lines()
        .map(str::to_owned)
        .collect();
    let machine = MachineConfig::xeon_e5645();

    let mut probe = SimProbe::new(machine.clone());
    let engine = Engine::builder().build();
    let mut fw = FrameworkModel::new();
    fw.warm(&mut probe);
    engine.run_traced_with(&Wc, &lines[..lines.len() / 5], &mut probe, &mut fw);
    probe.reset_stats();
    let (mut hadoop_out, _) = engine.run_traced_with(&Wc, &lines, &mut probe, &mut fw);
    let hadoop = probe.finish();

    let mut probe = SimProbe::new(machine);
    let wc = |ds: &Dataset<String>| {
        ds.flat_map(|l| l.split_whitespace().map(str::to_owned).collect())
            .key_by(|w| w.clone())
            .map_values(|_| 1u64)
            .reduce_by_key(|a, b| a + b)
    };
    wc(&Dataset::from_vec(lines[..lines.len() / 5].to_vec())).collect_traced(&mut probe);
    probe.reset_stats();
    let (mut flow_out, _) = wc(&Dataset::from_vec(lines)).collect_traced(&mut probe);
    let dataflow = probe.finish();

    // Same answer on both stacks...
    hadoop_out.sort();
    flow_out.sort();
    assert_eq!(hadoop_out, flow_out);
    // ...but the instruction-side misses belong to the deep stack.
    assert!(
        hadoop.l1i_mpki() > 10.0 * dataflow.l1i_mpki().max(0.01),
        "hadoop {} vs dataflow {}",
        hadoop.l1i_mpki(),
        dataflow.l1i_mpki()
    );
}
